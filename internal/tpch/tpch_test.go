package tpch

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"apuama/internal/costmodel"
	"apuama/internal/engine"
	"apuama/internal/sql"
)

const testSF = 0.002 // ~3000 orders, ~12000 lineitems

func loadTest(t *testing.T) (*engine.Database, *engine.Node) {
	t.Helper()
	db := engine.NewDatabase(costmodel.TestConfig())
	g := Generator{SF: testSF, Seed: 1}
	nd, err := g.Load(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, nd
}

func TestCardinalities(t *testing.T) {
	c := Cardinalities(1)
	if c["orders"] != 1_500_000 || c["region"] != 5 || c["nation"] != 25 {
		t.Errorf("SF1: %v", c)
	}
	c = Cardinalities(0.001)
	if c["orders"] != 1500 || c["supplier"] != 10 {
		t.Errorf("SF0.001: %v", c)
	}
	if c["customer"] < 1 {
		t.Error("clamp failed")
	}
}

func TestLoadPopulatesAllTables(t *testing.T) {
	db, _ := loadTest(t)
	card := Cardinalities(testSF)
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders"} {
		rel, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		if int(rel.LiveRows()) != card[name] {
			t.Errorf("%s: %d rows, want %d", name, rel.LiveRows(), card[name])
		}
	}
	li, _ := db.Relation("lineitem")
	if li.LiveRows() < int64(card["orders"]) || li.LiveRows() > int64(card["orders"]*7) {
		t.Errorf("lineitem rows: %d", li.LiveRows())
	}
	// Clustered indexes exist on fact tables.
	for name := range FactTables() {
		rel, _ := db.Relation(name)
		if rel.ClusteredIndex() == nil {
			t.Errorf("%s lacks clustered index", name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	db1 := engine.NewDatabase(costmodel.TestConfig())
	db2 := engine.NewDatabase(costmodel.TestConfig())
	g := Generator{SF: 0.001, Seed: 42}
	n1, err := g.Load(db1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := g.Load(db2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"select count(*), sum(l_extendedprice) from lineitem",
		"select count(*), sum(o_totalprice) from orders",
	} {
		r1, err := n1.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := n2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Rows[0][0].I != r2.Rows[0][0].I || r1.Rows[0][1].AsFloat() != r2.Rows[0][1].AsFloat() {
			t.Errorf("nondeterministic: %v vs %v", r1.Rows[0], r2.Rows[0])
		}
	}
}

func TestBadScaleFactor(t *testing.T) {
	db := engine.NewDatabase(costmodel.TestConfig())
	if _, err := (Generator{SF: 0}).Load(db); err == nil {
		t.Error("SF 0 should fail")
	}
	if _, err := (Generator{SF: -1}).Load(db); err == nil {
		t.Error("negative SF should fail")
	}
}

func TestQueryTextsParse(t *testing.T) {
	for _, qn := range QueryNumbers {
		text, err := Query(qn)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sql.ParseSelect(text); err != nil {
			t.Errorf("Q%d does not parse: %v", qn, err)
		}
	}
	if _, err := Query(2); err == nil {
		t.Error("Q2 should be rejected")
	}
}

func TestAllQueriesExecute(t *testing.T) {
	_, nd := loadTest(t)
	expectRows := map[int]bool{1: true, 4: true} // queries that must return rows even at tiny SF
	for _, qn := range QueryNumbers {
		res, err := nd.Query(MustQuery(qn))
		if err != nil {
			t.Fatalf("Q%d: %v", qn, err)
		}
		t.Logf("Q%d: %d rows", qn, len(res.Rows))
		if expectRows[qn] && len(res.Rows) == 0 {
			t.Errorf("Q%d returned no rows", qn)
		}
	}
}

func TestQ1Shape(t *testing.T) {
	_, nd := loadTest(t)
	res, err := nd.Query(MustQuery(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 10 {
		t.Fatalf("Q1 columns: %v", res.Cols)
	}
	if len(res.Rows) < 3 || len(res.Rows) > 4 {
		t.Fatalf("Q1 groups: %d", len(res.Rows)) // (A,F), (N,F), (N,O), (R,F)
	}
	// avg_qty must equal sum_qty / count_order per group.
	for _, row := range res.Rows {
		sumQty, avgQty, n := row[2].AsFloat(), row[6].AsFloat(), row[9].AsFloat()
		if n == 0 {
			t.Fatal("empty group emitted")
		}
		if diff := sumQty/n - avgQty; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("avg mismatch: %v", row)
		}
	}
}

func TestQ6Selectivity(t *testing.T) {
	_, nd := loadTest(t)
	res, err := nd.Query(MustQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("Q6 rows: %d", len(res.Rows))
	}
	total, err := nd.Query("select count(*) from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	match, err := nd.Query(`select count(*) from lineitem
		where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
		and l_discount between 0.05 and 0.07 and l_quantity < 24`)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(match.Rows[0][0].I) / float64(total.Rows[0][0].I)
	if frac <= 0 || frac > 0.08 {
		t.Errorf("Q6 selectivity %f should be low and non-zero", frac)
	}
}

func TestRandomQueryVariants(t *testing.T) {
	_, nd := loadTest(t)
	r := newRand(7)
	for _, qn := range QueryNumbers {
		for i := 0; i < 3; i++ {
			text, err := RandomQuery(qn, r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := nd.Query(text); err != nil {
				t.Fatalf("random Q%d variant: %v\n%s", qn, err, text)
			}
		}
	}
	if _, err := RandomQuery(99, r); err == nil {
		t.Error("unknown query number should fail")
	}
}

func TestSequences(t *testing.T) {
	seqs := SequenceSet(5)
	for i, s := range seqs {
		if !isPermutation(s) {
			t.Errorf("stream %d is not a permutation: %v", i, s)
		}
	}
	if strings.Join(fmtInts(Sequence(1)), ",") == strings.Join(fmtInts(Sequence(2)), ",") {
		t.Error("streams 1 and 2 should differ")
	}
	// Stream 0 is the canonical order.
	s0 := Sequence(0)
	for i, qn := range QueryNumbers {
		if s0[i] != qn {
			t.Errorf("stream 0 not canonical: %v", s0)
		}
	}
	// Determinism.
	a, b := Sequence(3), Sequence(3)
	for i := range a {
		if a[i] != b[i] {
			t.Error("sequence not deterministic")
		}
	}
}

func TestRefreshStreamRoundTrip(t *testing.T) {
	db, nd := loadTest(t)
	before, err := nd.Query("select count(*) from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	g := Generator{SF: testSF, Seed: 1}
	rs := NewRefreshStream(g, 5)
	stmts := rs.Statements()
	if len(stmts) != 5*2+5*2 {
		t.Fatalf("statement count: %d", len(stmts))
	}
	for _, s := range stmts {
		if _, err := sql.Parse(s); err != nil {
			t.Fatalf("refresh statement does not parse: %v\n%s", err, s)
		}
		if _, err := nd.Exec(s); err != nil {
			t.Fatalf("refresh exec: %v\n%s", err, s)
		}
	}
	after, err := nd.Query("select count(*) from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if before.Rows[0][0].I != after.Rows[0][0].I {
		t.Errorf("RF2 did not remove RF1 rows: %v -> %v", before.Rows[0], after.Rows[0])
	}
	// Inserted keys were above the base population.
	orders, _ := db.Relation("orders")
	_, maxKey := orders.ColRange(0)
	if maxKey.I < g.MaxOrderKey()+1 {
		t.Errorf("refresh keys not above base: %v", maxKey)
	}
}

func TestSizeReport(t *testing.T) {
	db, _ := loadTest(t)
	rep := SizeReport(db)
	if rep["lineitem"] == 0 || rep["orders"] == 0 {
		t.Errorf("size report: %v", rep)
	}
	if rep["lineitem"] <= rep["region"] {
		t.Error("lineitem should dominate")
	}
}

func fmtInts(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = string(rune('0' + x%10))
	}
	return out
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestExportCSV(t *testing.T) {
	db, _ := loadTest(t)
	var buf strings.Builder
	n, err := ExportCSV(db, "nation", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("rows: %d", n)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 26 {
		t.Fatalf("lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "n_nationkey,") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.Contains(buf.String(), "SAUDI ARABIA") {
		t.Error("missing nation")
	}
	if _, err := ExportCSV(db, "missing", &buf); err == nil {
		t.Error("missing table should fail")
	}
}

func TestSkewedGenerator(t *testing.T) {
	db := engine.NewDatabase(costmodel.TestConfig())
	g := Generator{SF: 0.002, Seed: 1, Skew: 6}
	nd, err := g.Load(db)
	if err != nil {
		t.Fatal(err)
	}
	hot := g.MaxOrderKey() / 10
	res, err := nd.Query(fmt.Sprintf(
		"select count(*) from lineitem where l_orderkey <= %d", hot))
	if err != nil {
		t.Fatal(err)
	}
	hotLines := res.Rows[0][0].I
	res, err = nd.Query("select count(*) from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	total := res.Rows[0][0].I
	frac := float64(hotLines) / float64(total)
	// 10% of keys should carry far more than 10% of lines (~40%).
	if frac < 0.25 {
		t.Errorf("hot fraction %f: skew not applied", frac)
	}
	// Uniform generator for contrast.
	db2 := engine.NewDatabase(costmodel.TestConfig())
	nd2, err := (Generator{SF: 0.002, Seed: 1}).Load(db2)
	if err != nil {
		t.Fatal(err)
	}
	res, _ = nd2.Query(fmt.Sprintf("select count(*) from lineitem where l_orderkey <= %d", hot))
	res2, _ := nd2.Query("select count(*) from lineitem")
	uniformFrac := float64(res.Rows[0][0].I) / float64(res2.Rows[0][0].I)
	if uniformFrac > 0.15 {
		t.Errorf("uniform hot fraction %f unexpectedly high", uniformFrac)
	}
}
