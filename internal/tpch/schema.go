// Package tpch generates the TPC-H database, queries and refresh streams
// the paper evaluates with: a deterministic dbgen equivalent at a
// configurable scale factor, the eight benchmark queries the paper uses
// (Q1 Q3 Q4 Q5 Q6 Q12 Q14 Q21), the RF1/RF2 refresh functions, and the
// query-sequence permutations that model concurrent decision-making
// users.
//
// Divergences from the official kit (documented in DESIGN.md): order keys
// are dense (the paper itself treats l_orderkey as the dense interval
// [1, 6,000,000] when computing virtual partitions), text columns carry
// short synthetic payloads, and decimals are float64.
package tpch

import "fmt"

// Table cardinality bases at scale factor 1, per the TPC-H specification.
const (
	baseSupplier = 10_000
	baseCustomer = 150_000
	basePart     = 200_000
	baseOrders   = 1_500_000
)

// DDL returns the CREATE TABLE / CREATE INDEX script for the full TPC-H
// schema. Fact tables are physically clustered by their virtual
// partitioning attributes (o_orderkey; l_orderkey, l_linenumber), and
// every foreign key gets an index, exactly the physical design in the
// paper's §5.
func DDL() []string {
	return []string{
		`create table region (
			r_regionkey bigint, r_name varchar(25), r_comment varchar(152),
			primary key (r_regionkey))`,
		`create table nation (
			n_nationkey bigint, n_name varchar(25), n_regionkey bigint, n_comment varchar(152),
			primary key (n_nationkey))`,
		`create table supplier (
			s_suppkey bigint, s_name varchar(25), s_address varchar(40), s_nationkey bigint,
			s_phone varchar(15), s_acctbal decimal(15,2), s_comment varchar(101),
			primary key (s_suppkey))`,
		`create table customer (
			c_custkey bigint, c_name varchar(25), c_address varchar(40), c_nationkey bigint,
			c_phone varchar(15), c_acctbal decimal(15,2), c_mktsegment varchar(10), c_comment varchar(117),
			primary key (c_custkey))`,
		`create table part (
			p_partkey bigint, p_name varchar(55), p_mfgr varchar(25), p_brand varchar(10),
			p_type varchar(25), p_size bigint, p_container varchar(10), p_retailprice decimal(15,2),
			p_comment varchar(23), primary key (p_partkey))`,
		`create table partsupp (
			ps_partkey bigint, ps_suppkey bigint, ps_availqty bigint, ps_supplycost decimal(15,2),
			ps_comment varchar(199), primary key (ps_partkey, ps_suppkey))`,
		`create table orders (
			o_orderkey bigint, o_custkey bigint, o_orderstatus varchar(1), o_totalprice decimal(15,2),
			o_orderdate date, o_orderpriority varchar(15), o_clerk varchar(15), o_shippriority bigint,
			o_comment varchar(79), primary key (o_orderkey))`,
		`create table lineitem (
			l_orderkey bigint, l_partkey bigint, l_suppkey bigint, l_linenumber bigint,
			l_quantity decimal(15,2), l_extendedprice decimal(15,2), l_discount decimal(15,2),
			l_tax decimal(15,2), l_returnflag varchar(1), l_linestatus varchar(1),
			l_shipdate date, l_commitdate date, l_receiptdate date,
			l_shipinstruct varchar(25), l_shipmode varchar(10), l_comment varchar(44),
			primary key (l_orderkey, l_linenumber))`,
		// Foreign-key indexes, per the paper ("indexes are built for all
		// foreign keys of all tables").
		`create index nation_region_fk on nation (n_regionkey)`,
		`create index supplier_nation_fk on supplier (s_nationkey)`,
		`create index customer_nation_fk on customer (c_nationkey)`,
		`create index partsupp_supp_fk on partsupp (ps_suppkey)`,
		`create index orders_cust_fk on orders (o_custkey)`,
		`create index lineitem_part_fk on lineitem (l_partkey)`,
		`create index lineitem_supp_fk on lineitem (l_suppkey)`,
	}
}

// Cardinalities reports the table row counts at the given scale factor
// (lineitem is approximate: lines per order are drawn 1..7).
func Cardinalities(sf float64) map[string]int {
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": scaled(baseSupplier, sf),
		"customer": scaled(baseCustomer, sf),
		"part":     scaled(basePart, sf),
		"partsupp": scaled(basePart, sf) * 4,
		"orders":   scaled(baseOrders, sf),
		"lineitem": scaled(baseOrders, sf) * 4,
	}
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// FactTables lists the tables the paper virtually partitions, with their
// virtual partitioning attributes: orders on its primary key, lineitem
// derived through the l_orderkey foreign key.
func FactTables() map[string]string {
	return map[string]string{
		"orders":   "o_orderkey",
		"lineitem": "l_orderkey",
	}
}

// validate is a tiny self-check used by tests.
func validateSF(sf float64) error {
	if sf <= 0 {
		return fmt.Errorf("scale factor must be positive, got %v", sf)
	}
	return nil
}
