package tpch

import "fmt"

// Extended workload: TPC-H queries beyond the paper's evaluation set that
// the dialect supports. They exercise features the eight-query set does
// not (EXTRACT, correlated scalar aggregation, IN over a grouped
// sub-query, large disjunctions) and document which query shapes SVP can
// and cannot parallelize:
//
//   - Q7flat, Q10, Q19: SVP-eligible.
//   - Q17, Q18: reference fact tables in sub-queries without key
//     correlation — "cannot be transformed" (paper §2), so the middleware
//     falls back to inter-query processing. They still return exact
//     results.
//
// Q7 is the specification query with its derived-table wrapper flattened
// (the dialect has no FROM sub-queries).
var ExtendedQueryNumbers = []int{7, 10, 17, 18, 19}

// ExtendedQuery returns the text of an extended query with validation
// parameters.
func ExtendedQuery(qn int) (string, error) {
	switch qn {
	case 7:
		return Q7Flat("FRANCE", "GERMANY"), nil
	case 10:
		return Q10("1993-10-01"), nil
	case 17:
		return Q17("Brand#23", "MED BOX"), nil
	case 18:
		return Q18(300), nil
	case 19:
		return Q19("Brand#12", "Brand#23", "Brand#34"), nil
	default:
		return "", fmt.Errorf("query %d is not part of the extended workload", qn)
	}
}

// SVPEligibleExtended reports whether the extended query runs with
// intra-query parallelism (used by tests asserting fallback behaviour).
func SVPEligibleExtended(qn int) bool {
	switch qn {
	case 7, 10, 19:
		return true
	default:
		return false
	}
}

// Q7Flat is the volume shipping query, flattened: revenue shipped
// between two nations per year.
func Q7Flat(nation1, nation2 string) string {
	return fmt.Sprintf(`select n1.n_name as supp_nation, n2.n_name as cust_nation,
	extract(year from l_shipdate) as l_year,
	sum(l_extendedprice * (1 - l_discount)) as revenue
from supplier, lineitem, orders, customer, nation n1, nation n2
where s_suppkey = l_suppkey
	and o_orderkey = l_orderkey
	and c_custkey = o_custkey
	and s_nationkey = n1.n_nationkey
	and c_nationkey = n2.n_nationkey
	and (n1.n_name = '%s' and n2.n_name = '%s'
		or n1.n_name = '%s' and n2.n_name = '%s')
	and l_shipdate between date '1995-01-01' and date '1996-12-31'
group by n1.n_name, n2.n_name, extract(year from l_shipdate)
order by supp_nation, cust_nation, l_year`, nation1, nation2, nation2, nation1)
}

// Q10 is the returned item reporting query: top customers by lost
// revenue.
func Q10(day string) string {
	return fmt.Sprintf(`select c_custkey, c_name,
	sum(l_extendedprice * (1 - l_discount)) as revenue,
	c_acctbal, n_name, c_address, c_phone
from customer, orders, lineitem, nation
where c_custkey = o_custkey
	and l_orderkey = o_orderkey
	and o_orderdate >= date '%s'
	and o_orderdate < date '%s' + interval '3' month
	and l_returnflag = 'R'
	and c_nationkey = n_nationkey
group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
order by revenue desc
limit 20`, day, day)
}

// Q17 is the small-quantity-order revenue query: a correlated scalar
// sub-query over the fact table (keyed on l_partkey, not the VPA, so SVP
// must fall back).
func Q17(brand, container string) string {
	return fmt.Sprintf(`select sum(l_extendedprice) / 7.0 as avg_yearly
from lineitem, part
where p_partkey = l_partkey
	and p_brand = '%s'
	and p_container = '%s'
	and l_quantity < (
		select 0.2 * avg(l_quantity) from lineitem
		where l_partkey = p_partkey)`, brand, container)
}

// Q18 is the large volume customer query: IN over a grouped sub-query of
// the fact table (uncorrelated, so SVP must fall back).
func Q18(qty int) string {
	return fmt.Sprintf(`select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
	sum(l_quantity) as total_qty
from customer, orders, lineitem
where o_orderkey in (
		select l_orderkey from lineitem
		group by l_orderkey having sum(l_quantity) > %d)
	and c_custkey = o_custkey
	and o_orderkey = l_orderkey
group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
order by o_totalprice desc, o_orderdate
limit 100`, qty)
}

// Q19 is the discounted revenue query: a three-armed disjunction of
// conjunctive predicates across lineitem and part.
func Q19(brand1, brand2, brand3 string) string {
	return fmt.Sprintf(`select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, part
where p_partkey = l_partkey
	and (
		p_brand = '%s'
		and l_quantity between 1 and 11
		and p_size between 1 and 5
		and l_shipmode in ('AIR', 'REG AIR')
		and l_shipinstruct = 'DELIVER IN PERSON'
	or	p_brand = '%s'
		and l_quantity between 10 and 20
		and p_size between 1 and 10
		and l_shipmode in ('AIR', 'REG AIR')
		and l_shipinstruct = 'DELIVER IN PERSON'
	or	p_brand = '%s'
		and l_quantity between 20 and 30
		and p_size between 1 and 15
		and l_shipmode in ('AIR', 'REG AIR')
		and l_shipinstruct = 'DELIVER IN PERSON')`, brand1, brand2, brand3)
}
