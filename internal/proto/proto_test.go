package proto

import (
	"context"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"apuama/internal/cache"
	"apuama/internal/engine"
	"apuama/internal/obs"
	"apuama/internal/sqltypes"
	"apuama/internal/wire"
)

// fakeHandler serves a deterministic synthetic result: "rows N" returns
// N rows shaped like a TPC-H Q1 result line (int key, float aggregates,
// low-NDV string, date), "boom" fails, anything else returns a small
// fixed result. It implements wire.ContextHandler so cancellation and
// cache-control bits are observable.
type fakeHandler struct {
	mu       sync.Mutex
	execs    []string
	lastCtl  string // "nocache" / "maxstale=N" / ""
	queryErr error
	results  map[int]*engine.Result

	// block, when non-nil, is closed to release queries that wait on it
	// (for cancellation tests); waiting queries honour ctx.
	block chan struct{}
}

func (f *fakeHandler) Query(q string) (*engine.Result, error) {
	return f.QueryContext(context.Background(), q)
}

func (f *fakeHandler) QueryContext(ctx context.Context, q string) (*engine.Result, error) {
	f.mu.Lock()
	block := f.block
	qerr := f.queryErr
	f.mu.Unlock()
	if qerr != nil {
		return nil, qerr
	}
	if strings.Contains(q, "boom") {
		return nil, fmt.Errorf("synthetic failure")
	}
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	n := 3
	if _, after, ok := strings.Cut(q, "rows "); ok {
		if v, err := strconv.Atoi(strings.Fields(after)[0]); err == nil {
			n = v
		}
	}
	// Cache by size: the server only reads results, and rebuilding a
	// 40k-row batch per query would dominate the stream benchmarks.
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.results == nil {
		f.results = make(map[int]*engine.Result)
	}
	res, ok := f.results[n]
	if !ok {
		res = q1Result(n)
		f.results[n] = res
	}
	return res, nil
}

func (f *fakeHandler) Exec(q string) (int64, error) {
	if strings.Contains(q, "boom") {
		return 0, fmt.Errorf("synthetic failure")
	}
	f.mu.Lock()
	f.execs = append(f.execs, q)
	f.mu.Unlock()
	return int64(len(q)), nil
}

// q1Result builds an n-row result mixing the column shapes the codec
// must carry: ints, floats, dictionary-friendly strings, dates, NULLs,
// a mixed-kind column and an interval column (both tagged fallbacks).
func q1Result(n int) *engine.Result {
	res := &engine.Result{
		Cols: []string{"l_quantity", "sum_charge", "l_returnflag", "l_shipdate", "nullable", "mixed", "iv"},
	}
	flags := []string{"A", "N", "R"}
	for i := 0; i < n; i++ {
		mixed := sqltypes.NewInt(int64(i))
		if i%2 == 1 {
			mixed = sqltypes.NewString("odd")
		}
		nullable := sqltypes.NewFloat(float64(i) * 1.5)
		if i%3 == 0 {
			nullable = sqltypes.Value{}
		}
		res.Rows = append(res.Rows, sqltypes.Row{
			sqltypes.NewInt(int64(i * 7)),
			sqltypes.NewFloat(float64(i) * 1.0001),
			sqltypes.NewString(flags[i%len(flags)]),
			sqltypes.NewDate(int64(9000 + i/100)),
			nullable,
			mixed,
			sqltypes.NewInterval(int64(i), "day"),
		})
	}
	return res
}

func startPair(t *testing.T, opts Options, mode Mode) (*Server, *Client, *fakeHandler) {
	t.Helper()
	h := &fakeHandler{}
	s, err := Serve("127.0.0.1:0", h, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := DialMode(s.Addr(), mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c, h
}

// sameResult compares two results bit-identically (floats by bits, not
// tolerance).
func sameResult(t *testing.T, got, want *engine.Result) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("cols: got %v want %v", got.Cols, want.Cols)
	}
	for i := range got.Cols {
		if got.Cols[i] != want.Cols[i] {
			t.Fatalf("col %d: got %q want %q", i, got.Cols[i], want.Cols[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows: got %d want %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("row %d width: got %d want %d", i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j, g := range got.Rows[i] {
			w := want.Rows[i][j]
			if g.K != w.K || g.I != w.I || g.S != w.S ||
				math.Float64bits(g.F) != math.Float64bits(w.F) {
				t.Fatalf("row %d col %d: got %+v want %+v", i, j, g, w)
			}
		}
	}
}

func TestBinaryQueryRoundTrip(t *testing.T) {
	_, c, _ := startPair(t, Options{}, ModeBinary)
	if c.Proto() != "binary" {
		t.Fatalf("proto: %s", c.Proto())
	}
	if c.Version() != ProtoVersion {
		t.Fatalf("version: %d", c.Version())
	}
	for _, n := range []int{0, 1, 255, 256, 257, 5000} {
		res, err := c.Query(fmt.Sprintf("select rows %d", n))
		if err != nil {
			t.Fatalf("rows %d: %v", n, err)
		}
		sameResult(t, res, q1Result(n))
	}
}

func TestBinaryStreamCursor(t *testing.T) {
	_, c, _ := startPair(t, Options{}, ModeBinary)
	rows, err := c.QueryStreamContext(context.Background(), "select rows 1000", wire.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	want := q1Result(1000)
	if len(rows.Cols()) != len(want.Cols) {
		t.Fatalf("cols: %v", rows.Cols())
	}
	for i := 0; ; i++ {
		row, err := rows.Next()
		if err == io.EOF {
			if i != 1000 {
				t.Fatalf("rows: %d", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if row[0].I != want.Rows[i][0].I {
			t.Fatalf("row %d: %+v", i, row)
		}
	}
	// A drained cursor keeps reporting EOF.
	if _, err := rows.Next(); err != io.EOF {
		t.Fatalf("after EOF: %v", err)
	}
}

func TestBinaryQueryError(t *testing.T) {
	_, c, _ := startPair(t, Options{}, ModeBinary)
	if _, err := c.Query("boom"); err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("err: %v", err)
	}
	// The connection survives an error reply.
	if _, err := c.Query("select rows 2"); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryExecAndPing(t *testing.T) {
	_, c, h := startPair(t, Options{}, ModeBinary)
	n, err := c.Exec("insert something")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("insert something")) {
		t.Fatalf("affected: %d", n)
	}
	if _, err := c.Exec("boom"); err == nil {
		t.Fatal("exec boom should fail")
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.execs) != 1 || h.execs[0] != "insert something" {
		t.Fatalf("execs: %v", h.execs)
	}
}

func TestBinaryEarlyCloseReleasesStream(t *testing.T) {
	_, c, _ := startPair(t, Options{ChunkRows: 16}, ModeBinary)
	rows, err := c.QueryStreamContext(context.Background(), "select rows 100000", wire.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	rows.Close() // cancels the stream; the conn must stay usable
	res, err := c.Query("select rows 4")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, q1Result(4))
}

func TestBinaryContextCancelMidStream(t *testing.T) {
	_, c, _ := startPair(t, Options{ChunkRows: 8}, ModeBinary)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := c.QueryStreamContext(ctx, "select rows 100000", wire.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The cursor fails promptly (once buffered batches drain) and the
	// connection keeps serving other queries.
	for {
		if _, err := rows.Next(); err != nil {
			if err != context.Canceled {
				t.Fatalf("err: %v", err)
			}
			break
		}
	}
	if _, err := c.Query("select rows 1"); err != nil {
		t.Fatal(err)
	}
}

func TestCancelReachesHandler(t *testing.T) {
	h := &fakeHandler{block: make(chan struct{})}
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialMode(s.Addr(), ModeBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.QueryContext(ctx, "select rows 1", wire.QueryOptions{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the query reach the blocking handler
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not release the query")
	}
	// The wire-level cancel must reach the handler: its ctx unblocked the
	// wait (not the test closing the channel). The server saw one cancel.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Cancels == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Stats().Cancels; got != 1 {
		t.Fatalf("cancels: %d", got)
	}
	close(h.block)
}

func TestCacheControlBitsArrive(t *testing.T) {
	// The control bits must ride the binary fQuery frame into the
	// handler's context.
	h := &ctlHandler{}
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialMode(s.Addr(), ModeBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.QueryContext(context.Background(), "q", wire.QueryOptions{NoCache: true, MaxStaleEpochs: 7}); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.noCache || h.maxStale != 7 {
		t.Fatalf("control bits: nocache=%v maxstale=%d", h.noCache, h.maxStale)
	}
}

func TestServerStatsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, c, _ := func() (*Server, *Client, *fakeHandler) {
		h := &fakeHandler{}
		s, err := Serve("127.0.0.1:0", h, Options{Metrics: reg, ChunkRows: 256})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		c, err := DialMode(s.Addr(), ModeBinary)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return s, c, h
	}()
	if _, err := c.Query("select rows 600"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BinaryConns != 1 || st.NegotiatedVersion != ProtoVersion {
		t.Fatalf("conns/version: %+v", st)
	}
	if st.Streams != 1 || st.FramesIn < 1 || st.FramesOut < 4 /* header + ≥2 batches + end */ {
		t.Fatalf("frames: %+v", st)
	}
	if st.BytesOut <= st.BytesIn || st.BytesIn == 0 {
		t.Fatalf("bytes: %+v", st)
	}
	if got := reg.Counter(obs.MWireStreams).Value(); got != 1 {
		t.Fatalf("streams metric: %d", got)
	}
	if got := reg.Gauge(obs.MWireProtoVersion).Value(); got != ProtoVersion {
		t.Fatalf("version gauge: %d", got)
	}
}

// ctlHandler records the cache-control bits and transport tag it sees.
type ctlHandler struct {
	mu        sync.Mutex
	noCache   bool
	maxStale  int64
	transport string
}

func (h *ctlHandler) Query(string) (*engine.Result, error) {
	return &engine.Result{Cols: []string{"x"}}, nil
}

func (h *ctlHandler) QueryContext(ctx context.Context, _ string) (*engine.Result, error) {
	h.mu.Lock()
	ctl := cache.ControlFrom(ctx)
	h.noCache, h.maxStale = ctl.NoCache, ctl.MaxStaleEpochs
	h.transport = obs.TransportFrom(ctx)
	h.mu.Unlock()
	return &engine.Result{Cols: []string{"x"}}, nil
}

func (h *ctlHandler) Exec(string) (int64, error) { return 0, nil }

func TestTransportTag(t *testing.T) {
	h := &ctlHandler{}
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	bc, err := DialMode(s.Addr(), ModeBinary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Query("q"); err != nil {
		t.Fatal(err)
	}
	bc.Close()
	h.mu.Lock()
	if h.transport != "binary" {
		t.Fatalf("transport: %q", h.transport)
	}
	h.mu.Unlock()

	gc, err := DialMode(s.Addr(), ModeGob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gc.Query("q"); err != nil {
		t.Fatal(err)
	}
	gc.Close()
	h.mu.Lock()
	if h.transport != "gob" {
		t.Fatalf("transport: %q", h.transport)
	}
	h.mu.Unlock()
}
