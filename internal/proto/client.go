package proto

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"apuama/internal/engine"
	"apuama/internal/sqltypes"
	"apuama/internal/wire"
)

// Mode selects the transport a client dials.
type Mode string

// Dial modes: auto tries the binary handshake and transparently redials
// the legacy gob protocol when the server does not speak it; binary and
// gob pin one transport.
const (
	ModeAuto   Mode = "auto"
	ModeBinary Mode = "binary"
	ModeGob    Mode = "gob"
)

// ParseMode validates a -proto / DSN proto value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeAuto, ModeBinary, ModeGob:
		return Mode(s), nil
	case "":
		return ModeAuto, nil
	}
	return "", fmt.Errorf("proto: unknown protocol %q (want auto, binary or gob)", s)
}

// DefaultWindow is the per-query flow-control window: how many batch
// frames the server may have in flight before the client's consumption
// grants more credits. It bounds per-stream client buffering the way
// the engine's GatherBudget bounds the in-process gather channel.
const DefaultWindow = 32

// handshakeTimeout bounds the binary hello round-trip; a legacy gob
// server fails the hello decode and closes the connection well before
// this (the hello is padded to parse as one whole gob message), so the
// timeout only bites on unresponsive networks.
const handshakeTimeout = 2 * time.Second

// Client is one connection to a server. In binary mode any number of
// queries may be in flight concurrently, multiplexed over the single
// TCP connection; in gob mode it wraps the legacy wire.Client with its
// one-query-at-a-time discipline. All methods are safe for concurrent
// use.
type Client struct {
	gob *wire.Client // non-nil ⇒ gob fallback mode

	// Binary mode state.
	nc      net.Conn
	bw      *bufio.Writer
	wmu     sync.Mutex
	wpend   atomic.Int64 // flushing writers in flight (flush coalescing)
	version uint16

	mu      sync.Mutex
	streams map[uint32]*cliStream
	nextID  uint32
	connErr error
	closed  bool

	hdr atomic.Pointer[hdrCache] // last decoded result schema
}

// cliFrame is one demultiplexed server frame.
type cliFrame struct {
	typ     byte
	payload []byte
}

// cliStream receives one query's frames. ch is sized so the reader can
// always deliver without blocking: the server never exceeds the granted
// credit window of batch frames, plus one header and one trailer.
type cliStream struct {
	id     uint32
	ch     chan cliFrame
	cancel chan struct{} // closed by Rows.Close to unblock a waiter
	once   sync.Once
}

// streamPool recycles cliStreams — mainly their credit-window-sized
// frame channels — across queries. Only streams that ended cleanly
// (trailer received, hence already deleted from the demux map with an
// empty channel) are returned; abandoned streams go to the GC.
var streamPool = sync.Pool{New: func() any {
	return &cliStream{ch: make(chan cliFrame, DefaultWindow+2)}
}}

// releaseStream returns a cleanly-ended stream to the pool.
func releaseStream(st *cliStream) {
	select { // defensive: a pooled stream must present an empty channel
	case <-st.ch:
		return // unexpected leftover frame — do not recycle
	default:
	}
	streamPool.Put(st)
}

// hdrCache memoizes one decoded header frame. Queries multiplexed on a
// connection almost always share a schema, so the per-query header
// decode collapses to a byte comparison.
type hdrCache struct {
	key  string
	cols []string
}

// Dial connects in ModeAuto.
func Dial(addr string) (*Client, error) { return DialMode(addr, ModeAuto) }

// DialMode connects with an explicit transport choice.
func DialMode(addr string, mode Mode) (*Client, error) {
	if mode == ModeGob {
		gc, err := wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		return &Client{gob: gc}, nil
	}
	c, err := dialBinary(addr)
	if err != nil {
		if mode == ModeBinary {
			return nil, err
		}
		// Auto: the peer is (or behaved like) a legacy gob server;
		// redial speaking gob.
		gc, gerr := wire.Dial(addr)
		if gerr != nil {
			return nil, gerr
		}
		return &Client{gob: gc}, nil
	}
	return c, nil
}

func dialBinary(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if _, err := conn.Write(clientHello()); err != nil {
		conn.Close()
		return nil, err
	}
	var reply [helloReplySize]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		conn.Close()
		return nil, err
	}
	if [4]byte(reply[0:4]) != magic {
		conn.Close()
		return nil, errBadHello
	}
	ver := binary.LittleEndian.Uint16(reply[4:])
	if ver == 0 || ver > ProtoVersion {
		conn.Close()
		return nil, errBadHello
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		nc:      conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		version: ver,
		streams: map[uint32]*cliStream{},
	}
	go c.readLoop()
	return c, nil
}

// Proto reports the negotiated transport: "binary" or "gob".
func (c *Client) Proto() string {
	if c.gob != nil {
		return "gob"
	}
	return "binary"
}

// Version reports the negotiated binary frame-format version (0 in gob
// mode).
func (c *Client) Version() int { return int(c.version) }

// readLoop demultiplexes server frames to their streams. Stream
// channels are sized for the full credit window, so delivery under the
// lock never blocks; frames for unknown (finished or cancelled)
// streams are dropped.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		typ, id, payload, err := readFrame(br)
		if err != nil {
			c.mu.Lock()
			if c.connErr == nil {
				c.connErr = errClosed
				if !c.closed {
					c.connErr = fmt.Errorf("proto: connection lost: %w", err)
				}
			}
			streams := c.streams
			c.streams = map[uint32]*cliStream{}
			c.mu.Unlock()
			for _, st := range streams {
				close(st.ch)
			}
			return
		}
		c.mu.Lock()
		st := c.streams[id]
		if st != nil {
			st.ch <- cliFrame{typ: typ, payload: payload}
			if typ == fEnd {
				delete(c.streams, id)
			}
		}
		c.mu.Unlock()
	}
}

// openStream registers a new stream and returns it.
func (c *Client) openStream() (*cliStream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.connErr != nil {
		err := c.connErr
		if err == nil {
			err = errClosed
		}
		return nil, err
	}
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	st := streamPool.Get().(*cliStream)
	st.id = c.nextID
	st.cancel = make(chan struct{})
	st.once = sync.Once{}
	c.streams[st.id] = st
	return st, nil
}

// dropStream unregisters a stream (no more frames will be delivered)
// and tells the server to abort it.
func (c *Client) dropStream(st *cliStream) {
	c.mu.Lock()
	_, live := c.streams[st.id]
	delete(c.streams, st.id)
	c.mu.Unlock()
	if live {
		c.writeFrame(fCancel, st.id, nil)
	}
}

// writeFrame writes one frame and flushes — unless another writer is
// already waiting on the connection, in which case the last writer of
// the burst flushes for everyone. Concurrent queries on one multiplexed
// connection thus coalesce their request frames into fewer syscalls.
func (c *Client) writeFrame(typ byte, id uint32, payload []byte) error {
	c.wpend.Add(1)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.bw == nil {
		c.wpend.Add(-1)
		return errClosed
	}
	err := writeFrame(c.bw, typ, id, payload)
	if c.wpend.Add(-1) == 0 && err == nil {
		err = c.bw.Flush()
	}
	return err
}

// recv waits for the stream's next frame, honouring the caller's
// context and a concurrent Rows.Close.
func (c *Client) recv(ctx context.Context, st *cliStream) (cliFrame, error) {
	select {
	case f, ok := <-st.ch:
		if !ok {
			return cliFrame{}, c.connError()
		}
		return f, nil
	default:
	}
	select {
	case f, ok := <-st.ch:
		if !ok {
			return cliFrame{}, c.connError()
		}
		return f, nil
	case <-ctx.Done():
		c.dropStream(st)
		return cliFrame{}, ctx.Err()
	case <-st.cancel:
		c.dropStream(st)
		return cliFrame{}, errCancelled
	}
}

// cachedHeader decodes a header frame, memoizing the last distinct
// schema: when the payload bytes repeat, the cached cols slice is
// shared (callers only read it).
func (c *Client) cachedHeader(p []byte) ([]string, error) {
	if h := c.hdr.Load(); h != nil && h.key == string(p) {
		return h.cols, nil
	}
	cols, err := decodeHeader(p)
	if err != nil {
		return nil, err
	}
	c.hdr.Store(&hdrCache{key: string(p), cols: cols})
	return cols, nil
}

func (c *Client) connError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.connErr != nil {
		return c.connErr
	}
	return errClosed
}

// Query runs a read-only statement and materializes the whole result.
func (c *Client) Query(sqlText string) (*engine.Result, error) {
	return c.QueryContext(context.Background(), sqlText, wire.QueryOptions{})
}

// QueryContext is Query with a context (a done context cancels the
// query on the server through a wire-level cancel frame, leaving the
// shared connection usable) and per-request cache directives.
func (c *Client) QueryContext(ctx context.Context, sqlText string, opt wire.QueryOptions) (*engine.Result, error) {
	rows, err := c.QueryStreamContext(ctx, sqlText, opt)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	rows.pin = true // the materialized result retains every row
	res := &engine.Result{Cols: rows.Cols()}
	for {
		row, err := rows.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
}

// QueryStreamContext runs a read-only statement as a cursor: batches
// are decoded from the shared connection as the caller consumes them,
// with credit-based flow control bounding how far the server can run
// ahead. Unlike the gob protocol, a streaming read does not reserve the
// connection — any number of cursors from any goroutines proceed
// concurrently.
func (c *Client) QueryStreamContext(ctx context.Context, sqlText string, opt wire.QueryOptions) (*Rows, error) {
	if c.gob != nil {
		rd, err := c.gob.QueryStreamOpt(sqlText, opt)
		if err != nil {
			return nil, err
		}
		return &Rows{gr: rd}, nil
	}
	st, err := c.openStream()
	if err != nil {
		return nil, err
	}
	if err := c.writeFrame(fQuery, st.id, encodeQuery(DefaultWindow, opt, sqlText)); err != nil {
		c.dropStream(st)
		return nil, err
	}
	f, err := c.recv(ctx, st)
	if err != nil {
		return nil, err
	}
	switch f.typ {
	case fHeader:
		cols, err := c.cachedHeader(f.payload)
		if err != nil {
			c.dropStream(st)
			return nil, err
		}
		return &Rows{c: c, st: st, ctx: ctx, cols: cols}, nil
	case fEnd:
		releaseStream(st) // readLoop already dropped it on the trailer
		_, qerr, ferr := decodeEnd(f.payload)
		if ferr != nil {
			return nil, ferr
		}
		if qerr == nil {
			qerr = errBadFrame // a query stream must open with a header
		}
		return nil, qerr
	default:
		c.dropStream(st)
		return nil, errBadFrame
	}
}

// Exec runs a write/DDL/SET statement.
func (c *Client) Exec(sqlText string) (int64, error) {
	return c.ExecContext(context.Background(), sqlText)
}

// ExecContext is Exec with a context.
func (c *Client) ExecContext(ctx context.Context, sqlText string) (int64, error) {
	if c.gob != nil {
		return c.gob.Exec(sqlText)
	}
	st, err := c.openStream()
	if err != nil {
		return 0, err
	}
	if err := c.writeFrame(fExec, st.id, encodeExec(sqlText)); err != nil {
		c.dropStream(st)
		return 0, err
	}
	return c.awaitEnd(ctx, st)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	if c.gob != nil {
		return c.gob.Ping()
	}
	st, err := c.openStream()
	if err != nil {
		return err
	}
	if err := c.writeFrame(fPing, st.id, nil); err != nil {
		c.dropStream(st)
		return err
	}
	_, err = c.awaitEnd(context.Background(), st)
	return err
}

// awaitEnd reads frames until the stream's trailer.
func (c *Client) awaitEnd(ctx context.Context, st *cliStream) (int64, error) {
	for {
		f, err := c.recv(ctx, st)
		if err != nil {
			return 0, err
		}
		if f.typ != fEnd {
			continue // tolerate (and discard) unexpected frames
		}
		releaseStream(st)
		affected, qerr, ferr := decodeEnd(f.payload)
		if ferr != nil {
			return 0, ferr
		}
		return affected, qerr
	}
}

// Close closes the connection; in-flight streams fail with a closed
// error.
func (c *Client) Close() error {
	if c.gob != nil {
		return c.gob.Close()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.nc.Close()
}

// Rows is a streaming cursor over one query's result — the binary
// protocol's counterpart of wire.RowReader (which backs it in gob
// fallback mode).
//
// A Row returned by Next is valid until the next Next or Close call:
// the cursor recycles its decode slab across batches. Copy Values out
// of the row to retain them — copied Values stay valid indefinitely,
// since string contents alias the (immutable, never recycled) frame
// payload rather than the slab.
type Rows struct {
	gr *wire.RowReader // gob fallback

	c        *Client
	st       *cliStream
	ctx      context.Context
	cols     []string
	buf      []sqltypes.Row
	bufs     *rowBufs
	pin      bool // materializing reader: rows must outlive the cursor
	pos      int
	consumed uint32 // batches consumed since the last credit grant
	done     bool
	err      error
}

// Cols returns the result schema.
func (r *Rows) Cols() []string {
	if r.gr != nil {
		return r.gr.Cols()
	}
	return r.cols
}

// Next returns the next row, or io.EOF after the last one. Any
// mid-stream server error surfaces here once and is sticky.
func (r *Rows) Next() (sqltypes.Row, error) {
	if r.gr != nil {
		return r.gr.Next()
	}
	for {
		if r.err != nil {
			return nil, r.err
		}
		if r.pos < len(r.buf) {
			row := r.buf[r.pos]
			r.pos++
			return row, nil
		}
		if r.done {
			return nil, io.EOF
		}
		f, err := r.c.recv(r.ctx, r.st)
		if err != nil {
			r.done, r.err = true, err
			return nil, err
		}
		switch f.typ {
		case fBatch:
			if !r.pin && r.bufs == nil {
				r.bufs = bufsPool.Get().(*rowBufs)
			}
			// A pinned (materializing) reader passes nil bufs: fresh
			// slab per batch, rows stay stable forever.
			rows, err := decodeBlockInto(f.payload, r.bufs)
			if err != nil {
				r.fail(err)
				return nil, err
			}
			r.buf, r.pos = rows, 0
			// Top up the server's credit window once half is consumed,
			// keeping the pipe full without unbounded client buffering.
			r.consumed++
			if r.consumed >= DefaultWindow/2 {
				r.c.writeFrame(fCredit, r.st.id, encodeCredit(r.consumed))
				r.consumed = 0
			}
		case fEnd:
			r.done = true
			releaseStream(r.st) // ended cleanly: readLoop already dropped it
			r.releaseBufs()
			_, qerr, ferr := decodeEnd(f.payload)
			if ferr != nil {
				r.err = ferr
				return nil, ferr
			}
			if qerr != nil {
				r.err = qerr
				return nil, qerr
			}
		default:
			r.fail(errBadFrame)
			return nil, r.err
		}
	}
}

// releaseBufs recycles the cursor's decode buffers. Only called once
// the cursor's rows are invalid by contract — after the trailer or on
// Close — and never for pinned readers (whose bufs stay nil).
func (r *Rows) releaseBufs() {
	if r.bufs != nil {
		bufsPool.Put(r.bufs)
		r.bufs = nil
	}
	r.buf = nil
}

// fail poisons the reader and abandons the stream (the connection
// itself stays in sync — framing is length-prefixed — so other streams
// continue).
func (r *Rows) fail(err error) {
	r.done, r.err = true, err
	r.c.dropStream(r.st)
}

// Close releases the stream. If the server is still sending, a cancel
// frame aborts it without disturbing the other queries multiplexed on
// the connection; no draining is needed.
func (r *Rows) Close() error {
	if r.gr != nil {
		return r.gr.Close()
	}
	if !r.done {
		r.done = true
		r.st.once.Do(func() { close(r.st.cancel) })
		r.c.dropStream(r.st)
	}
	if r.err == nil {
		r.err = io.EOF
	}
	r.buf, r.pos = nil, 0
	return nil
}
