package proto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"apuama/internal/sqltypes"
	"apuama/internal/wire"
)

// FuzzFrameDecode drives arbitrary bytes through every wire decoder —
// none may panic or allocate absurdly — and, when the input is long
// enough to seed a structured batch, round-trips it through
// encodeBlock/decodeBlock checking bit-identical reconstruction
// (floats compared by bit pattern, not equality, so NaN payloads and
// negative zero count too).
func FuzzFrameDecode(f *testing.F) {
	// Seed the corpus with real encodings of the shapes the protocol
	// ships: every frame payload kind plus blocks exercising each column
	// encoding (i64, f64, plain/dict/RLE strings, nulls, tagged).
	f.Add(encodeBlock(nil, 7, q1Rows(200), nil))
	f.Add(encodeBlock(nil, 1, intRows(300), nil))
	f.Add(encodeBlock(nil, 2, nil, nil))
	f.Add(encodeQuery(32, wire.QueryOptions{NoCache: true, MaxStaleEpochs: 9}, "select l_returnflag from lineitem"))
	f.Add(encodeHeader([]string{"a", "b", "c"}))
	f.Add(encodeEnd(42, nil))
	f.Add(encodeEnd(0, errBadFrame))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Raw decoders: arbitrary input errors, never panics. The
		// decoded rows may alias data, so nothing mutates it afterwards.
		if rows, err := decodeBlock(data); err == nil {
			for _, r := range rows {
				for _, v := range r {
					_ = v.K
				}
			}
		}
		decodeQuery(data)
		decodeExec(data)
		decodeHeader(data)
		decodeEnd(data)
		decodeCredit(data)
		sqltypes.DecodeColVec(data)
		br := bufio.NewReader(bytes.NewReader(data))
		readFrame(br)

		// 2. Structured round-trip: derive a batch from the fuzz input,
		// encode, decode, compare bit-identically.
		rows := rowsFromSeed(data)
		if rows == nil {
			return
		}
		ncols := len(rows[0])
		enc := encodeBlock(nil, ncols, rows, nil)
		got, err := decodeBlock(enc)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(got) != len(rows) {
			t.Fatalf("rows: got %d want %d", len(got), len(rows))
		}
		for i := range rows {
			for j := range rows[i] {
				w, g := rows[i][j], got[i][j]
				if g.K != w.K || g.I != w.I || g.S != w.S ||
					math.Float64bits(g.F) != math.Float64bits(w.F) {
					t.Fatalf("row %d col %d: got %+v want %+v", i, j, g, w)
				}
			}
		}
	})
}

// rowsFromSeed deterministically builds a batch from fuzz bytes: the
// first bytes pick the shape, the rest feed values. Returns nil when
// the input is too short to seed anything.
func rowsFromSeed(data []byte) []sqltypes.Row {
	if len(data) < 8 {
		return nil
	}
	ncols := 1 + int(data[0]%5)
	nrows := 1 + int(binary.LittleEndian.Uint16(data[1:]))%512
	data = data[3:]
	byteAt := func(i int) byte { return data[i%len(data)] }
	u64At := func(i int) uint64 {
		var b [8]byte
		for k := range b {
			b[k] = byteAt(i + k)
		}
		return binary.LittleEndian.Uint64(b[:])
	}
	rows := make([]sqltypes.Row, nrows)
	for r := 0; r < nrows; r++ {
		row := make(sqltypes.Row, ncols)
		for c := 0; c < ncols; c++ {
			seed := r*ncols + c
			switch byteAt(seed) % 8 {
			case 0:
				row[c] = sqltypes.Value{} // NULL
			case 1:
				row[c] = sqltypes.NewInt(int64(u64At(seed)))
			case 2:
				// Any bit pattern, including NaN/Inf/-0.
				row[c] = sqltypes.NewFloat(math.Float64frombits(u64At(seed)))
			case 3:
				n := int(byteAt(seed+1)) % 16
				row[c] = sqltypes.NewString(string(data[seed%len(data):][:min(n, len(data)-seed%len(data))]))
			case 4:
				// Low-NDV string: exercises dictionary/RLE encodings.
				row[c] = sqltypes.NewString([]string{"A", "N", "R"}[int(byteAt(seed+2))%3])
			case 5:
				row[c] = sqltypes.NewDate(int64(u64At(seed)) % 100000)
			case 6:
				row[c] = sqltypes.NewBool(byteAt(seed+3)%2 == 1)
			case 7:
				row[c] = sqltypes.NewInterval(int64(u64At(seed)), []string{"day", "month", "year"}[int(byteAt(seed+4))%3])
			}
		}
		rows[r] = row
	}
	return rows
}

// intRows builds a single-column all-int batch (pure I64 vector path).
func intRows(n int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i * 3))}
	}
	return rows
}

func q1Rows(n int) []sqltypes.Row { return q1Result(n).Rows }
