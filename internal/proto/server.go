package proto

import (
	"bufio"
	"context"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"apuama/internal/cache"
	"apuama/internal/engine"
	"apuama/internal/obs"
	"apuama/internal/sqltypes"
	"apuama/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Metrics mirrors the server's wire counters into a registry
	// (apuama_wire_*; nil disables mirroring).
	Metrics *obs.Registry
	// BinaryOnly refuses legacy gob connections instead of falling back
	// to the internal/wire handler.
	BinaryOnly bool
	// ChunkRows is the rows per batch frame (default DefaultBatchRows).
	ChunkRows int
}

// DefaultBatchRows is how many rows the server packs per binary batch
// frame. Much larger than the gob chunk size: the columnar codec's cost
// is per batch (one dictionary build, one frame, one credit) rather
// than per value, so bigger batches amortize it — 4096 Q1-shaped rows
// is still only ~100 KiB on the wire.
const DefaultBatchRows = 4096

// Stats is a point-in-time snapshot of a server's wire activity.
type Stats struct {
	FramesIn, FramesOut int64 // binary frames received / sent
	BytesIn, BytesOut   int64 // frame bytes received / sent (headers included)
	Streams             int64 // query/exec/ping streams opened
	Cancels             int64 // wire-level cancel frames honoured
	BinaryConns         int64 // connections negotiated onto the binary protocol
	GobConns            int64 // connections that fell back to the gob protocol
	// NegotiatedVersion is the frame-format version of the most recent
	// binary handshake (0 until one completes).
	NegotiatedVersion int64
}

// serverStats is the server's atomic counter block, mirrored into the
// metrics registry the same way core's engineStats mirrors (nil-safe
// handles; a single Add updates both views).
type serverStats struct {
	framesIn, framesOut atomic.Int64
	bytesIn, bytesOut   atomic.Int64
	streams             atomic.Int64
	cancels             atomic.Int64
	binaryConns         atomic.Int64
	gobConns            atomic.Int64
	version             atomic.Int64

	mFrames, mBytes, mStreams, mCancels *obs.Counter
	mVersion                            *obs.Gauge
	mShip                               *obs.Histogram
}

func (st *serverStats) wire(reg *obs.Registry) {
	st.mFrames = reg.Counter(obs.MWireFrames)
	st.mBytes = reg.Counter(obs.MWireBytes)
	st.mStreams = reg.Counter(obs.MWireStreams)
	st.mCancels = reg.Counter(obs.MWireCancels)
	st.mVersion = reg.Gauge(obs.MWireProtoVersion)
	st.mShip = reg.Histogram(obs.MWireShip)
}

func (st *serverStats) frameIn(payload int) {
	st.framesIn.Add(1)
	st.bytesIn.Add(int64(frameHeaderSize + payload))
	st.mFrames.Inc()
	st.mBytes.Add(int64(frameHeaderSize + payload))
}

func (st *serverStats) frameOut(payload int) {
	st.framesOut.Add(1)
	st.bytesOut.Add(int64(frameHeaderSize + payload))
	st.mFrames.Inc()
	st.mBytes.Add(int64(frameHeaderSize + payload))
}

// Server accepts connections, sniffs the handshake, and serves the
// binary multiplexed protocol — falling back to the legacy gob protocol
// (via wire.ServeConn) for peers that do not speak it.
type Server struct {
	ln   net.Listener
	h    wire.Handler
	opts Options
	st   serverStats

	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts listening on addr (use "127.0.0.1:0" for an ephemeral
// test port) and serving in background goroutines.
func Serve(addr string, h wire.Handler, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if opts.ChunkRows <= 0 {
		opts.ChunkRows = DefaultBatchRows
	}
	s := &Server{ln: ln, h: h, opts: opts, conns: map[net.Conn]struct{}{}}
	s.st.wire(opts.Metrics)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the server's wire counters.
func (s *Server) Stats() Stats {
	return Stats{
		FramesIn:          s.st.framesIn.Load(),
		FramesOut:         s.st.framesOut.Load(),
		BytesIn:           s.st.bytesIn.Load(),
		BytesOut:          s.st.bytesOut.Load(),
		Streams:           s.st.streams.Load(),
		Cancels:           s.st.cancels.Load(),
		BinaryConns:       s.st.binaryConns.Load(),
		GobConns:          s.st.gobConns.Load(),
		NegotiatedVersion: s.st.version.Load(),
	}
}

// Close stops accepting, closes every live connection (in-flight
// queries are cancelled) and waits for the serving goroutines. Safe to
// call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// prefixConn replays sniffed bytes before the live connection — how a
// gob peer's first request reaches wire.ServeConn intact.
type prefixConn struct {
	net.Conn
	r io.Reader
}

func (p *prefixConn) Read(b []byte) (int, error) { return p.r.Read(b) }

// serveConn sniffs the first four bytes: the binary magic selects the
// framed protocol, anything else is a legacy gob peer.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var head [4]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return
	}
	if head != magic {
		if s.opts.BinaryOnly {
			return
		}
		s.st.gobConns.Add(1)
		wire.ServeConn(&prefixConn{Conn: conn, r: io.MultiReader(newByteReader(head[:]), conn)}, s.h)
		return
	}
	s.serveBinary(conn)
}

// newByteReader copies the sniffed bytes so the stack array can be
// replayed after serveConn's frame returns.
func newByteReader(b []byte) io.Reader {
	cp := make([]byte, len(b))
	copy(cp, b)
	return &sliceReader{b: cp}
}

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// srvStream is one in-flight query on a binary connection.
type srvStream struct {
	ctx     context.Context
	cancel  context.CancelFunc
	credits atomic.Int64
	kick    chan struct{} // cap 1; poked when credits arrive
}

// tryCredit consumes one batch credit without blocking.
func (st *srvStream) tryCredit() bool {
	if st.credits.Load() > 0 {
		st.credits.Add(-1)
		return true
	}
	return false
}

// waitCredit consumes one batch credit, blocking until the client
// grants more or the stream is cancelled. The caller must flush any
// buffered frames first — the client cannot grant credits for batches
// it has not seen.
func (st *srvStream) waitCredit() bool {
	for {
		if st.tryCredit() {
			return true
		}
		select {
		case <-st.kick:
		case <-st.ctx.Done():
			return false
		}
	}
}

// binConn is one negotiated binary connection: a read loop demultiplexes
// client frames while per-stream goroutines serve queries and interleave
// their response frames through the shared write mutex.
type binConn struct {
	srv   *Server
	nc    net.Conn
	bw    *bufio.Writer
	wmu   sync.Mutex
	wpend atomic.Int64 // flushing writers in flight (flush coalescing)

	ctx    context.Context
	cancel context.CancelFunc

	smu     sync.Mutex
	streams map[uint32]*srvStream

	qwg sync.WaitGroup
}

func (s *Server) serveBinary(conn net.Conn) {
	// Finish the handshake: the rest of the hello, then the version
	// reply. A peer that stalls mid-hello is cut off by the deadline so
	// the serving goroutine cannot leak forever on a half-open socket.
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	var rest [helloSize - 4]byte
	if _, err := io.ReadFull(conn, rest[:]); err != nil {
		return
	}
	peerMax := uint16(rest[0]) | uint16(rest[1])<<8
	ver := negotiate(peerMax)
	if ver == 0 {
		return
	}
	if _, err := conn.Write(helloReply(ver)); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	s.st.binaryConns.Add(1)
	s.st.version.Store(int64(ver))
	s.st.mVersion.Set(int64(ver))

	ctx, cancel := context.WithCancel(context.Background())
	c := &binConn{
		srv: s, nc: conn,
		bw:  bufio.NewWriterSize(conn, 64<<10),
		ctx: ctx, cancel: cancel,
		streams: map[uint32]*srvStream{},
	}
	defer cancel()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		typ, id, payload, err := readFrame(br)
		if err != nil {
			break
		}
		s.st.frameIn(len(payload))
		switch typ {
		case fQuery:
			q, err := decodeQuery(payload)
			if err != nil {
				c.writeEnd(id, 0, err)
				continue
			}
			st := c.addStream(id)
			if st == nil {
				c.writeEnd(id, 0, errBadFrame)
				continue
			}
			st.credits.Store(int64(q.credits))
			s.st.streams.Add(1)
			s.st.mStreams.Inc()
			c.qwg.Add(1)
			go c.runQuery(id, st, q)
		case fExec:
			sqlText, err := decodeExec(payload)
			if err != nil {
				c.writeEnd(id, 0, err)
				continue
			}
			s.st.streams.Add(1)
			s.st.mStreams.Inc()
			c.qwg.Add(1)
			go c.runExec(id, sqlText)
		case fPing:
			c.writeEnd(id, 0, nil)
		case fCancel:
			c.smu.Lock()
			st := c.streams[id]
			c.smu.Unlock()
			if st != nil {
				st.cancel()
				s.st.cancels.Add(1)
				s.st.mCancels.Inc()
			}
		case fCredit:
			n, err := decodeCredit(payload)
			if err != nil {
				continue
			}
			c.smu.Lock()
			st := c.streams[id]
			c.smu.Unlock()
			if st != nil {
				st.credits.Add(int64(n))
				select {
				case st.kick <- struct{}{}:
				default:
				}
			}
		default:
			// Unknown client frame: ignore for forward compatibility.
		}
	}
	// Connection gone (or server closing): cancel every in-flight
	// stream and wait for its goroutine before closing the socket.
	cancel()
	c.qwg.Wait()
}

func (c *binConn) addStream(id uint32) *srvStream {
	ctx, cancel := context.WithCancel(c.ctx)
	st := &srvStream{ctx: ctx, cancel: cancel, kick: make(chan struct{}, 1)}
	c.smu.Lock()
	defer c.smu.Unlock()
	if _, dup := c.streams[id]; dup {
		cancel()
		return nil
	}
	c.streams[id] = st
	return st
}

func (c *binConn) removeStream(id uint32, st *srvStream) {
	c.smu.Lock()
	delete(c.streams, id)
	c.smu.Unlock()
	st.cancel()
}

// writeFrame writes one frame and flushes — unless another writer is
// already waiting on the connection, in which case the flush is left to
// the last writer of the burst. Under concurrent streams this coalesces
// many small frames into one syscall.
func (c *binConn) writeFrame(typ byte, id uint32, payload []byte) error {
	c.wpend.Add(1)
	c.wmu.Lock()
	err := writeFrame(c.bw, typ, id, payload)
	if c.wpend.Add(-1) == 0 && err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err == nil {
		c.srv.st.frameOut(len(payload))
	}
	return err
}

// writeBuffered copies one frame into the connection buffer without
// flushing. Only runQuery uses it, and only when it will either write
// again immediately or call flush before blocking — buffered frames
// must never wait on the client, who cannot see them yet.
func (c *binConn) writeBuffered(typ byte, id uint32, payload []byte) error {
	c.wmu.Lock()
	err := writeFrame(c.bw, typ, id, payload)
	c.wmu.Unlock()
	if err == nil {
		c.srv.st.frameOut(len(payload))
	}
	return err
}

// flush pushes buffered frames to the socket; skipped when a flushing
// writer is in flight, since that writer will carry these bytes out.
func (c *binConn) flush() error {
	if c.wpend.Load() > 0 {
		return nil
	}
	c.wmu.Lock()
	err := c.bw.Flush()
	c.wmu.Unlock()
	return err
}

func (c *binConn) writeEnd(id uint32, affected int64, err error) error {
	return c.writeFrame(fEnd, id, encodeEnd(affected, err))
}

// handleQuery routes a query to the handler with the stream's context —
// wire-level cancel frames cancel it — plus the cache-control bits and
// the transport tag the tracing layer annotates onto the query span.
func (c *binConn) handleQuery(ctx context.Context, q queryReq) (*engine.Result, error) {
	ch, ok := c.srv.h.(wire.ContextHandler)
	if !ok {
		return c.srv.h.Query(q.sql)
	}
	ctx = obs.WithTransport(ctx, "binary")
	if q.noCache || q.maxStale > 0 {
		ctx = cache.WithControl(ctx, cache.Control{
			NoCache:        q.noCache,
			MaxStaleEpochs: q.maxStale,
		})
	}
	return ch.QueryContext(ctx, q.sql)
}

// encScratch bundles one stream's block-encode buffers: the frame
// payload being built and the dictionary-building scratch. Pooled
// across queries so a short query costs no encode allocations at all.
type encScratch struct {
	hdr  []byte
	buf  []byte
	cols sqltypes.ColScratch
}

var encPool = sync.Pool{New: func() any { return new(encScratch) }}

// runQuery executes one query stream: header frame, credit-gated batch
// frames, trailer. The block scratch buffer is reused across batches —
// writeFrame copies into the connection's buffered writer before
// returning, so the reuse never races the socket.
func (c *binConn) runQuery(id uint32, st *srvStream, q queryReq) {
	defer c.qwg.Done()
	defer c.removeStream(id, st)
	res, err := c.handleQuery(st.ctx, q)
	if err != nil {
		c.writeEnd(id, 0, err)
		return
	}
	t0 := time.Now()
	// Header, batches and trailer are buffered, not flushed per frame: a
	// small pre-credited result reaches the socket in ONE write. The only
	// mandatory flush points are before blocking on credits (the client
	// cannot grant credits for frames it has not seen) and after the
	// trailer.
	es := encPool.Get().(*encScratch)
	defer encPool.Put(es)
	es.hdr = appendHeader(es.hdr[:0], res.Cols)
	if err := c.writeBuffered(fHeader, id, es.hdr); err != nil {
		return
	}
	rows := res.Rows
	chunk := c.srv.opts.ChunkRows
	var streamErr error
	for len(rows) > 0 {
		if !st.tryCredit() {
			if err := c.flush(); err != nil {
				return
			}
			if !st.waitCredit() {
				streamErr = errCancelled
				break
			}
		}
		part := rows
		if len(part) > chunk {
			part = part[:chunk]
		}
		rows = rows[len(part):]
		es.buf = encodeBlock(es.buf[:0], len(res.Cols), part, &es.cols)
		if err := c.writeBuffered(fBatch, id, es.buf); err != nil {
			return
		}
	}
	c.srv.st.mShip.Observe(time.Since(t0))
	if err := c.writeBuffered(fEnd, id, encodeEnd(0, streamErr)); err != nil {
		return
	}
	c.flush()
}

func (c *binConn) runExec(id uint32, sqlText string) {
	defer c.qwg.Done()
	n, err := c.srv.h.Exec(sqlText)
	c.writeEnd(id, n, err)
}
