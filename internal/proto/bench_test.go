package proto

import (
	"context"
	"fmt"
	"testing"

	"apuama/internal/wire"
)

// benchDrain streams one query and counts rows.
func benchDrain(b *testing.B, c *Client, q string, want int) {
	rows, err := c.QueryStreamContext(context.Background(), q, wire.QueryOptions{})
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	for {
		if _, err := rows.Next(); err != nil {
			break
		}
		n++
	}
	rows.Close()
	if n != want {
		b.Fatalf("drained %d rows, want %d", n, want)
	}
}

func benchStream(b *testing.B, mode Mode) {
	const rows = 40960
	h := &fakeHandler{}
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := DialMode(s.Addr(), mode)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	q := fmt.Sprintf("select rows %d", rows)
	benchDrain(b, c, q, rows) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchDrain(b, c, q, rows)
	}
	b.SetBytes(rows)
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkWireStreamBinary / BenchmarkWireStreamGob drain a Q1-shaped
// 40960-row stream through each codec — the microbenchmark behind the
// -exp wire figure.
func BenchmarkWireStreamBinary(b *testing.B) { benchStream(b, ModeBinary) }
func BenchmarkWireStreamGob(b *testing.B)    { benchStream(b, ModeGob) }

// BenchmarkWireMux16 is the 16-in-flight half of the -exp wire figure:
// 16 workers issuing small queries through ONE multiplexed binary
// connection; b.N counts individual queries.
func BenchmarkWireMux16(b *testing.B) {
	const rows, workers = 256, 16
	h := &fakeHandler{}
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := DialMode(s.Addr(), ModeBinary)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	q := fmt.Sprintf("select rows %d", rows)
	benchDrain(b, c, q, rows) // warm
	b.ResetTimer()
	b.SetParallelism(workers)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchDrain(b, c, q, rows)
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
