package proto

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"apuama/internal/admission"
	"apuama/internal/wire"
)

// TestMuxConcurrentQueries runs 64 concurrent queries over ONE binary
// connection, a third of them cancelled mid-stream, and checks every
// surviving result is complete and correct. Run under -race this is the
// protocol's interleaving stress test.
func TestMuxConcurrentQueries(t *testing.T) {
	_, c, _ := startPair(t, Options{ChunkRows: 32}, ModeBinary)
	const workers = 64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 100 + i*37
			ctx := context.Background()
			if i%3 == 0 {
				// Interleaved cancels: a third of the streams abort
				// after the first row.
				rows, err := c.QueryStreamContext(ctx, fmt.Sprintf("select rows %d", n), wire.QueryOptions{})
				if err != nil {
					errs <- fmt.Errorf("worker %d open: %w", i, err)
					return
				}
				if _, err := rows.Next(); err != nil {
					errs <- fmt.Errorf("worker %d first row: %w", i, err)
				}
				rows.Close()
				return
			}
			res, err := c.QueryContext(ctx, fmt.Sprintf("select rows %d", n), wire.QueryOptions{})
			if err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
				return
			}
			if len(res.Rows) != n {
				errs <- fmt.Errorf("worker %d: %d rows, want %d", i, len(res.Rows), n)
				return
			}
			// Spot-check content integrity under interleaving: rows
			// belong to THIS query's result, not another stream's.
			for j, row := range res.Rows {
				if row[0].I != int64(j*7) {
					errs <- fmt.Errorf("worker %d row %d: got %d", i, j, row[0].I)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxInterleavedExecAndPing mixes queries, execs and pings on one
// connection.
func TestMuxInterleavedExecAndPing(t *testing.T) {
	_, c, _ := startPair(t, Options{}, ModeBinary)
	var wg sync.WaitGroup
	errs := make(chan error, 48)
	for i := 0; i < 16; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			if _, err := c.Query("select rows 50"); err != nil {
				errs <- err
			}
		}()
		go func(i int) {
			defer wg.Done()
			if _, err := c.Exec(fmt.Sprintf("insert %d", i)); err != nil {
				errs <- err
			}
		}(i)
		go func() {
			defer wg.Done()
			if err := c.Ping(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCompatBinaryClientGobServer checks the dialer's fallback: a
// ModeAuto client against a legacy gob-only wire.Server negotiates down
// and the whole query surface still works.
func TestCompatBinaryClientGobServer(t *testing.T) {
	h := &fakeHandler{}
	s, err := wire.Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr()) // ModeAuto
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Proto() != "gob" {
		t.Fatalf("proto: %s (want gob fallback)", c.Proto())
	}
	res, err := c.Query("select rows 300")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, q1Result(300))
	if _, err := c.Query("boom"); err == nil {
		t.Fatal("want error")
	}
	n, err := c.Exec("write")
	if err != nil || n != int64(len("write")) {
		t.Fatalf("exec: %d %v", n, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Streaming works through the fallback path too.
	rows, err := c.QueryStreamContext(context.Background(), "select rows 600", wire.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, err := rows.Next(); err != nil {
			break
		}
		count++
	}
	rows.Close()
	if count != 600 {
		t.Fatalf("streamed rows: %d", count)
	}
}

// TestCompatGobClientBinaryServer checks the server's sniffing: a
// legacy wire.Client against a proto.Server is replayed into the gob
// handler and passes its usual exchanges.
func TestCompatGobClientBinaryServer(t *testing.T) {
	h := &fakeHandler{}
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := wire.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("select rows 300")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, q1Result(300))
	rd, err := c.QueryStream("select rows 600")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, err := rd.Next(); err != nil {
			break
		}
		count++
	}
	rd.Close()
	if count != 600 {
		t.Fatalf("streamed rows: %d", count)
	}
	if _, err := c.Exec("write"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.GobConns != 1 || st.BinaryConns != 0 {
		t.Fatalf("conns: %+v", st)
	}
}

// TestBinaryOnlyRefusesGob pins the -proto binary server behaviour.
func TestBinaryOnlyRefusesGob(t *testing.T) {
	h := &fakeHandler{}
	s, err := Serve("127.0.0.1:0", h, Options{BinaryOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := wire.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("gob ping against a binary-only server should fail")
	}
	bc, err := DialMode(s.Addr(), ModeBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if err := bc.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionErrorsSurviveBinaryFrames checks the typed admission
// error codes ride the binary trailer end-to-end: errors.Is matches the
// sentinel and the retry-after hint survives.
func TestAdmissionErrorsSurviveBinaryFrames(t *testing.T) {
	h := &fakeHandler{}
	h.queryErr = admission.Remote("overloaded", "cluster saturated: try later", 1500*time.Millisecond)
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	check := func(t *testing.T, err error) {
		t.Helper()
		if err == nil {
			t.Fatal("want shed error")
		}
		if !errors.Is(err, admission.ErrOverloaded) {
			t.Fatalf("not ErrOverloaded: %v", err)
		}
		if !admission.Retryable(err) {
			t.Fatalf("not retryable: %v", err)
		}
		if got := admission.RetryAfter(err); got != 1500*time.Millisecond {
			t.Fatalf("retry-after: %v", got)
		}
	}

	bc, err := DialMode(s.Addr(), ModeBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	_, qerr := bc.Query("select rows 1")
	check(t, qerr)
	// And through a stream open.
	_, serr := bc.QueryStreamContext(context.Background(), "select rows 1", wire.QueryOptions{})
	check(t, serr)

	// Same guarantees through the gob fallback on the same server.
	gc, err := DialMode(s.Addr(), ModeGob)
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()
	_, gerr := gc.Query("select rows 1")
	check(t, gerr)
}

// TestServerCloseCancelsInflight: closing the server releases blocked
// queries instead of hanging Close.
func TestServerCloseCancelsInflight(t *testing.T) {
	h := &fakeHandler{block: make(chan struct{})}
	s, err := Serve("127.0.0.1:0", h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialMode(s.Addr(), ModeBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Query("select rows 1")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung on an in-flight query")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("query should fail when the server dies")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client query hung after server close")
	}
	close(h.block)
}
