// Package proto is the binary columnar wire protocol: a length-prefixed
// frame format carrying columnar batch blocks in the ColVec layout,
// multiplexed so many in-flight queries share one TCP connection with
// per-query stream IDs, credit-based flow control and wire-level
// cancellation. Version negotiation at handshake lets old gob peers
// transparently fall back to the internal/wire protocol (gob stays the
// compatibility codec); see DESIGN.md "Wire protocol" for the grammar.
//
// Frame layout (integers little-endian):
//
//	u32 payloadLen | u8 type | u32 streamID | payload[payloadLen]
//
// Frame types:
//
//	fQuery  client→server  open a query stream: u32 credits, u8 flags
//	                       (bit0 nocache), i64 maxStaleEpochs, u32 len,
//	                       sql
//	fExec   client→server  run a write/DDL: u32 len, sql
//	fPing   client→server  liveness probe (empty); answered with fEnd
//	fCancel client→server  abort the stream server-side (empty)
//	fCredit client→server  grant n more batch frames: u32 n
//	fHeader server→client  result schema: u16 ncols, per col u16 len +
//	                       name
//	fBatch  server→client  one columnar row block (see block.go)
//	fEnd    server→client  stream trailer: u8 ok; ok=1: i64 affected;
//	                       ok=0: i64 retryAfterMs, u16 len + code,
//	                       u32 len + message
//
// Handshake: the client opens with a 70-byte hello — magic 0xFF 'A' 'P'
// 'U', u16 maxVersion, 64 zero pad — and the server answers with 8
// bytes: magic, u16 chosenVersion, u16 reserved. The hello is padded so
// a legacy gob server, which reads the 0xFF lead byte as a one-byte gob
// length prefix ('A' = a 65-byte message), consumes the whole hello,
// fails to decode it as a Request and closes the connection immediately
// — the dialer detects the close and redials speaking gob. A new server
// sniffs the first four bytes of every accepted connection: the magic
// selects the binary path, anything else is replayed into the legacy
// gob handler.
package proto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"apuama/internal/wire"
)

// ProtoVersion is the highest frame-format version this build speaks.
const ProtoVersion = 1

// Frame types.
const (
	fQuery  = 1
	fExec   = 2
	fPing   = 3
	fCancel = 4
	fCredit = 5
	fHeader = 6
	fBatch  = 7
	fEnd    = 8
)

// maxFramePayload bounds a frame's declared payload length so a
// corrupt or hostile peer cannot demand an absurd allocation.
const maxFramePayload = 64 << 20

// frameHeaderSize is u32 len + u8 type + u32 streamID.
const frameHeaderSize = 9

// Handshake sizes; see the package comment for the rationale behind the
// hello padding.
const (
	helloSize      = 70
	helloReplySize = 8
)

var magic = [4]byte{0xFF, 'A', 'P', 'U'}

var (
	errBadFrame  = errors.New("proto: malformed frame")
	errBadBlock  = errors.New("proto: malformed batch block")
	errBadHello  = errors.New("proto: malformed handshake")
	errClosed    = errors.New("proto: connection closed")
	errCancelled = errors.New("proto: stream cancelled")
)

// readFrame reads one frame; the payload is freshly allocated because
// decoded batches alias it for their lifetime.
func readFrame(r *bufio.Reader) (typ byte, stream uint32, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	typ = hdr[4]
	stream = binary.LittleEndian.Uint32(hdr[5:])
	if n > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("%w: payload %d exceeds limit", errBadFrame, n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return typ, stream, payload, nil
}

// writeFrame writes one frame and flushes. Callers serialize with their
// connection's write mutex.
// writeFrame copies one frame into w without flushing: flush policy —
// coalescing bursts from many streams into one syscall — belongs to the
// connection owners on both sides.
func writeFrame(w *bufio.Writer, typ byte, stream uint32, payload []byte) error {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:], stream)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// queryReq is a decoded fQuery payload.
type queryReq struct {
	credits  uint32
	noCache  bool
	maxStale int64
	sql      string
}

const flagNoCache = 1 << 0

func encodeQuery(credits uint32, opt wire.QueryOptions, sql string) []byte {
	b := make([]byte, 0, 17+len(sql))
	b = binary.LittleEndian.AppendUint32(b, credits)
	var flags byte
	if opt.NoCache {
		flags |= flagNoCache
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(opt.MaxStaleEpochs))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sql)))
	return append(b, sql...)
}

func decodeQuery(p []byte) (queryReq, error) {
	if len(p) < 17 {
		return queryReq{}, errBadFrame
	}
	q := queryReq{
		credits:  binary.LittleEndian.Uint32(p),
		noCache:  p[4]&flagNoCache != 0,
		maxStale: int64(binary.LittleEndian.Uint64(p[5:])),
	}
	n := binary.LittleEndian.Uint32(p[13:])
	if uint32(len(p)-17) != n {
		return queryReq{}, errBadFrame
	}
	q.sql = string(p[17:])
	return q, nil
}

func encodeExec(sql string) []byte {
	b := make([]byte, 0, 4+len(sql))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sql)))
	return append(b, sql...)
}

func decodeExec(p []byte) (string, error) {
	if len(p) < 4 || uint32(len(p)-4) != binary.LittleEndian.Uint32(p) {
		return "", errBadFrame
	}
	return string(p[4:]), nil
}

func encodeCredit(n uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], n)
	return b[:]
}

func decodeCredit(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, errBadFrame
	}
	return binary.LittleEndian.Uint32(p), nil
}

func encodeHeader(cols []string) []byte {
	size := 2
	for _, c := range cols {
		size += 2 + len(c)
	}
	return appendHeader(make([]byte, 0, size), cols)
}

func appendHeader(b []byte, cols []string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(cols)))
	for _, c := range cols {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(c)))
		b = append(b, c...)
	}
	return b
}

func decodeHeader(p []byte) ([]string, error) {
	if len(p) < 2 {
		return nil, errBadFrame
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	cols := make([]string, n)
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return nil, errBadFrame
		}
		l := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < l {
			return nil, errBadFrame
		}
		cols[i] = string(p[:l])
		p = p[l:]
	}
	if len(p) != 0 {
		return nil, errBadFrame
	}
	return cols, nil
}

// encodeEnd renders a stream trailer. err == nil means success with the
// given affected count; otherwise the error travels as its verbatim
// message plus the structured admission code and retry-after hint, the
// same scheme the gob protocol uses (wire.EncodeErr), so errors.Is
// against admission's sentinels holds across either transport.
func encodeEnd(affected int64, err error) []byte {
	if err == nil {
		b := make([]byte, 0, 9)
		b = append(b, 1)
		return binary.LittleEndian.AppendUint64(b, uint64(affected))
	}
	msg, code, retryMs := wire.EncodeErr(err)
	b := make([]byte, 0, 15+len(code)+len(msg))
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint64(b, uint64(retryMs))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(code)))
	b = append(b, code...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(msg)))
	return append(b, msg...)
}

// decodeEnd is encodeEnd's inverse; a non-nil error reproduces the
// typed admission error when a structured code rode along.
func decodeEnd(p []byte) (affected int64, err error, ferr error) {
	if len(p) < 1 {
		return 0, nil, errBadFrame
	}
	if p[0] == 1 {
		if len(p) != 9 {
			return 0, nil, errBadFrame
		}
		return int64(binary.LittleEndian.Uint64(p[1:])), nil, nil
	}
	if len(p) < 15 {
		return 0, nil, errBadFrame
	}
	retryMs := int64(binary.LittleEndian.Uint64(p[1:]))
	cl := int(binary.LittleEndian.Uint16(p[9:]))
	p = p[11:]
	if len(p) < cl+4 {
		return 0, nil, errBadFrame
	}
	code := string(p[:cl])
	p = p[cl:]
	ml := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != ml {
		return 0, nil, errBadFrame
	}
	return 0, wire.DecodeErr(string(p), code, retryMs), nil
}

// clientHello builds the padded 70-byte hello.
func clientHello() []byte {
	b := make([]byte, helloSize)
	copy(b, magic[:])
	binary.LittleEndian.PutUint16(b[4:], ProtoVersion)
	return b
}

// helloReply builds the server's 8-byte handshake answer.
func helloReply(version uint16) []byte {
	b := make([]byte, helloReplySize)
	copy(b, magic[:])
	binary.LittleEndian.PutUint16(b[4:], version)
	return b
}

// negotiate picks the version to speak with a peer advertising max.
func negotiate(peerMax uint16) uint16 {
	if peerMax < ProtoVersion {
		return peerMax
	}
	return ProtoVersion
}
