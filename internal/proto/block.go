package proto

// Batch blocks: the fBatch payload. A block is a row batch transposed
// into ColVec columnar form — typed little-endian arrays with
// dictionary/RLE string compression — so the receiving side
// reconstructs rows by slicing the frame payload instead of decoding
// values one by one. Columns the columnar layout cannot carry (interval
// values, whose unit string rides outside the typed array, or columns
// mixing kinds across rows) fall back to a tagged-value stream; both
// forms coexist per block, chosen column by column.
//
// Block layout (little-endian; the block always starts a frame payload,
// which is what ColVec alignment padding is relative to):
//
//	u16 ncols | u16 reserved | u32 nrows
//	per column: u8 mode — 0 = ColVec (sqltypes wire form),
//	                      1 = tagged values (per row: u8 kind + payload)
//
// Tagged value payloads: null — nothing; int/date/bool — i64; float —
// u64 bits; string — u32 len + bytes; interval — i64 count + u8 unit
// len + unit.

import (
	"encoding/binary"
	"math"
	"sync"
	"unsafe"

	"apuama/internal/sqltypes"
)

const (
	colModeVec    = 0
	colModeTagged = 1
)

// maxBlockValues bounds nrows×ncols of a decoded block: RLE lets a tiny
// payload legitimately claim many rows, so the row-count claim alone
// cannot be trusted against the payload size. Wire batches are
// DefaultBatchCapacity rows; this is generous headroom.
const maxBlockValues = 1 << 20

// encodeBlock appends the block form of rows (all the same width) to
// dst and returns the extended buffer. dst must be empty (the block
// computes alignment from the buffer start); its capacity — and sc, the
// dictionary-building scratch (nil allocates per call) — are reused
// across batches by the sending loop.
func encodeBlock(dst []byte, cols int, rows []sqltypes.Row, sc *sqltypes.ColScratch) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(cols))
	dst = binary.LittleEndian.AppendUint16(dst, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	if len(rows) == 0 {
		return dst
	}
	for col := 0; col < cols; col++ {
		if out, ok := sqltypes.AppendColumn(append(dst, colModeVec), rows, col, sc); ok {
			dst = out
			continue
		}
		dst = append(dst, colModeTagged)
		dst = appendTaggedColumn(dst, rows, col)
	}
	return dst
}

func appendTaggedColumn(dst []byte, rows []sqltypes.Row, col int) []byte {
	for _, r := range rows {
		v := r[col]
		dst = append(dst, byte(v.K))
		switch v.K {
		case sqltypes.KindNull:
		case sqltypes.KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case sqltypes.KindString:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.S)))
			dst = append(dst, v.S...)
		case sqltypes.KindInterval:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
			dst = append(dst, byte(len(v.S)))
			dst = append(dst, v.S...)
		default: // int, date, bool
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
		}
	}
	return dst
}

// rowBufs holds a streaming cursor's reusable decode buffers: the
// Value slab and row-header slice batches materialize into. Reusing
// them makes a batch's rows invalid once the next batch decodes — the
// cursor contract — but Values copied out of a row stay valid forever,
// because string contents alias the immutable frame payload, not these
// buffers.
type rowBufs struct {
	vals []sqltypes.Value
	rows []sqltypes.Row
}

// bufsPool shares decode buffers across cursors: without it every
// single-batch query would pay a fresh slab allocation, which dominates
// the per-query cost of small multiplexed queries.
var bufsPool = sync.Pool{New: func() any { return new(rowBufs) }}

// decodeBlock is decodeBlockInto with fresh buffers: the returned rows
// are stable for as long as the caller keeps them.
func decodeBlock(payload []byte) ([]sqltypes.Row, error) {
	return decodeBlockInto(payload, nil)
}

// decodeBlockInto reconstructs the rows of one block. Rows are
// materialized into a single Value slab (one allocation for the whole
// block, not one per value); vector payloads and string contents alias
// payload, which must stay immutable afterwards. A non-nil bufs is
// recycled when capacity allows — every slab slot is overwritten before
// returning, so no stale values leak between batches. Arbitrary input
// errors, never panics.
func decodeBlockInto(payload []byte, bufs *rowBufs) ([]sqltypes.Row, error) {
	if len(payload) < 8 {
		return nil, errBadBlock
	}
	ncols := int(binary.LittleEndian.Uint16(payload))
	nrows := int(binary.LittleEndian.Uint32(payload[4:]))
	if nrows == 0 {
		return nil, nil
	}
	if ncols == 0 || nrows*ncols > maxBlockValues {
		return nil, errBadBlock
	}
	// ColVec alignment padding is relative to the frame payload start,
	// so the decoder walks the payload itself with an absolute offset.
	off := 8
	var vals []sqltypes.Value
	var rows []sqltypes.Row
	if bufs != nil && cap(bufs.vals) >= nrows*ncols && cap(bufs.rows) >= nrows {
		vals = bufs.vals[:nrows*ncols]
		rows = bufs.rows[:nrows]
	} else {
		vals = make([]sqltypes.Value, nrows*ncols)
		rows = make([]sqltypes.Row, nrows)
		if bufs != nil {
			bufs.vals, bufs.rows = vals, rows
		}
	}
	for i := range rows {
		rows[i] = sqltypes.Row(vals[i*ncols : (i+1)*ncols : (i+1)*ncols])
	}
	for col := 0; col < ncols; col++ {
		if off >= len(payload) {
			return nil, errBadBlock
		}
		mode := payload[off]
		off++
		switch mode {
		case colModeVec:
			vec, n, err := sqltypes.DecodeColVecOffset(payload, off)
			if err != nil {
				return nil, err
			}
			if vec.Len() != nrows {
				return nil, errBadBlock
			}
			off += n
			fillColumn(vals, ncols, col, vec)
		case colModeTagged:
			n, err := decodeTaggedColumn(vals, ncols, col, nrows, payload[off:])
			if err != nil {
				return nil, err
			}
			off += n
		default:
			return nil, errBadBlock
		}
	}
	if off != len(payload) {
		return nil, errBadBlock
	}
	return rows, nil
}

// fillColumn scatters a decoded vector down column col of the value
// slab. The kind switch is hoisted out of the row loop so each column
// fills with a tight typed loop; dictionary/RLE strings resolve through
// a sequential run cursor instead of per-row binary search.
func fillColumn(vals []sqltypes.Value, ncols, col int, vec *sqltypes.ColVec) {
	n := vec.Len()
	switch {
	case vec.F64 != nil:
		for i := 0; i < n; i++ {
			vals[i*ncols+col] = sqltypes.Value{K: sqltypes.KindFloat, F: vec.F64[i]}
		}
	case vec.Str != nil:
		for i := 0; i < n; i++ {
			vals[i*ncols+col] = sqltypes.Value{K: sqltypes.KindString, S: vec.Str[i]}
		}
	case vec.RunEnds != nil:
		run := 0
		for i := 0; i < n; i++ {
			for int32(i) >= vec.RunEnds[run] {
				run++
			}
			vals[i*ncols+col] = sqltypes.Value{K: sqltypes.KindString, S: vec.Dict[vec.RunCodes[run]]}
		}
	case vec.Dict != nil:
		for i := 0; i < n; i++ {
			vals[i*ncols+col] = sqltypes.Value{K: sqltypes.KindString, S: vec.Dict[vec.Codes[i]]}
		}
	default:
		k := vec.Kind
		for i := 0; i < n; i++ {
			vals[i*ncols+col] = sqltypes.Value{K: k, I: vec.I64[i]}
		}
	}
	if vec.Nulls != nil {
		for i := 0; i < n; i++ {
			if vec.Nulls[i] {
				vals[i*ncols+col] = sqltypes.Value{}
			}
		}
	}
}

// decodeTaggedColumn decodes nrows tagged values into column col,
// returning the bytes consumed. String contents alias p.
func decodeTaggedColumn(vals []sqltypes.Value, ncols, col, nrows int, p []byte) (int, error) {
	off := 0
	for i := 0; i < nrows; i++ {
		if off >= len(p) {
			return 0, errBadBlock
		}
		k := sqltypes.Kind(p[off])
		off++
		v := sqltypes.Value{K: k}
		switch k {
		case sqltypes.KindNull:
		case sqltypes.KindFloat:
			if len(p)-off < 8 {
				return 0, errBadBlock
			}
			v.F = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		case sqltypes.KindString:
			if len(p)-off < 4 {
				return 0, errBadBlock
			}
			l := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if l < 0 || len(p)-off < l {
				return 0, errBadBlock
			}
			v.S = viewString(p[off : off+l])
			off += l
		case sqltypes.KindInterval:
			if len(p)-off < 9 {
				return 0, errBadBlock
			}
			v.I = int64(binary.LittleEndian.Uint64(p[off:]))
			ul := int(p[off+8])
			off += 9
			if len(p)-off < ul {
				return 0, errBadBlock
			}
			v.S = viewString(p[off : off+ul])
			off += ul
		case sqltypes.KindInt, sqltypes.KindDate, sqltypes.KindBool:
			if len(p)-off < 8 {
				return 0, errBadBlock
			}
			v.I = int64(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		default:
			return 0, errBadBlock
		}
		vals[i*ncols+col] = v
	}
	return off, nil
}

// viewString views b as a string without copying; the decode buffer is
// owned by the decoded rows and never recycled.
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
