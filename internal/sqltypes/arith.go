package sqltypes

import "fmt"

// Arithmetic over values follows PostgreSQL's numeric promotion rules for
// the subset we support: int op int → int (except division by a non-divisor
// promotes to float, which is what TPC-H's decimal arithmetic needs),
// anything involving a float → float, date ± int → date, date - date → int.
// Any operation with a NULL operand yields NULL.

// Add returns a + b.
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a - b.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a * b.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a / b. Division by zero is an error, as in PostgreSQL.
func Div(a, b Value) (Value, error) { return arith(a, b, '/') }

func arith(a, b Value, op byte) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	// Date arithmetic: date ± interval, date ± int days, date - date.
	if a.K == KindDate || b.K == KindDate || a.K == KindInterval || b.K == KindInterval {
		return dateArith(a, b, op)
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("operator %c not defined for %s and %s", op, a.K, b.K)
	}
	if a.K == KindFloat || b.K == KindFloat || op == '/' {
		af, bf := a.AsFloat(), b.AsFloat()
		switch op {
		case '+':
			return NewFloat(af + bf), nil
		case '-':
			return NewFloat(af - bf), nil
		case '*':
			return NewFloat(af * bf), nil
		case '/':
			if bf == 0 {
				return Null(), fmt.Errorf("division by zero")
			}
			return NewFloat(af / bf), nil
		}
	}
	switch op {
	case '+':
		return NewInt(a.I + b.I), nil
	case '-':
		return NewInt(a.I - b.I), nil
	case '*':
		return NewInt(a.I * b.I), nil
	}
	return Null(), fmt.Errorf("unknown operator %c", op)
}

func dateArith(a, b Value, op byte) (Value, error) {
	switch {
	case a.K == KindDate && b.K == KindInterval:
		return shiftDate(a, b, op)
	case a.K == KindInterval && b.K == KindDate && op == '+':
		return shiftDate(b, a, '+')
	case a.K == KindDate && b.K == KindInt:
		switch op {
		case '+':
			return NewDate(a.I + b.I), nil
		case '-':
			return NewDate(a.I - b.I), nil
		}
	case a.K == KindInt && b.K == KindDate && op == '+':
		return NewDate(a.I + b.I), nil
	case a.K == KindDate && b.K == KindDate && op == '-':
		return NewInt(a.I - b.I), nil
	}
	return Null(), fmt.Errorf("operator %c not defined for %s and %s", op, a.K, b.K)
}

// shiftDate applies an interval to a date using calendar arithmetic (month
// and year shifts are not fixed day counts).
func shiftDate(d, iv Value, op byte) (Value, error) {
	n := int(iv.I)
	if op == '-' {
		n = -n
	} else if op != '+' {
		return Null(), fmt.Errorf("operator %c not defined for DATE and INTERVAL", op)
	}
	t := epoch.AddDate(0, 0, int(d.I))
	switch iv.S {
	case "day":
		t = t.AddDate(0, 0, n)
	case "month":
		t = t.AddDate(0, n, 0)
	case "year":
		t = t.AddDate(n, 0, 0)
	default:
		return Null(), fmt.Errorf("unknown interval unit %q", iv.S)
	}
	return NewDate(int64(t.Sub(epoch).Hours() / 24)), nil
}

// Neg returns -a for numeric values.
func Neg(a Value) (Value, error) {
	switch a.K {
	case KindNull:
		return Null(), nil
	case KindInt:
		return NewInt(-a.I), nil
	case KindFloat:
		return NewFloat(-a.F), nil
	default:
		return Null(), fmt.Errorf("unary minus not defined for %s", a.K)
	}
}
