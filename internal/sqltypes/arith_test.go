package sqltypes

import (
	"testing"
	"testing/quick"
)

func mustOK(t *testing.T) func(Value, error) Value {
	return func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
}

func TestIntArith(t *testing.T) {
	if v := mustOK(t)(Add(NewInt(2), NewInt(3))); v.K != KindInt || v.I != 5 {
		t.Errorf("2+3 = %v", v)
	}
	if v := mustOK(t)(Sub(NewInt(2), NewInt(3))); v.I != -1 {
		t.Errorf("2-3 = %v", v)
	}
	if v := mustOK(t)(Mul(NewInt(4), NewInt(3))); v.I != 12 {
		t.Errorf("4*3 = %v", v)
	}
	// Division always promotes to float (decimal semantics).
	if v := mustOK(t)(Div(NewInt(7), NewInt(2))); v.K != KindFloat || v.F != 3.5 {
		t.Errorf("7/2 = %v", v)
	}
}

func TestFloatPromotion(t *testing.T) {
	if v := mustOK(t)(Add(NewInt(1), NewFloat(0.5))); v.K != KindFloat || v.F != 1.5 {
		t.Errorf("1+0.5 = %v", v)
	}
	if v := mustOK(t)(Mul(NewFloat(2), NewFloat(3))); v.F != 6 {
		t.Errorf("2.0*3.0 = %v", v)
	}
}

func TestNullPropagation(t *testing.T) {
	for _, op := range []func(Value, Value) (Value, error){Add, Sub, Mul, Div} {
		if v := mustOK(t)(op(Null(), NewInt(1))); !v.IsNull() {
			t.Error("NULL op x should be NULL")
		}
		if v := mustOK(t)(op(NewInt(1), Null())); !v.IsNull() {
			t.Error("x op NULL should be NULL")
		}
	}
	if v := mustOK(t)(Neg(Null())); !v.IsNull() {
		t.Error("-NULL should be NULL")
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("expected division by zero error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("expected division by zero error (float)")
	}
}

func TestTypeErrors(t *testing.T) {
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("string + int should error")
	}
	if _, err := Neg(NewString("a")); err == nil {
		t.Error("-string should error")
	}
	if _, err := Mul(MustDate("1994-01-01"), NewInt(2)); err == nil {
		t.Error("date * int should error")
	}
}

func TestDateArith(t *testing.T) {
	d := MustDate("1994-03-15")
	if v := mustOK(t)(Add(d, NewInt(10))); v.DateString() != "1994-03-25" {
		t.Errorf("date+10 = %v", v)
	}
	if v := mustOK(t)(Sub(d, NewInt(14))); v.DateString() != "1994-03-01" {
		t.Errorf("date-14 = %v", v)
	}
	if v := mustOK(t)(Add(NewInt(1), d)); v.DateString() != "1994-03-16" {
		t.Errorf("1+date = %v", v)
	}
	d2 := MustDate("1994-04-15")
	if v := mustOK(t)(Sub(d2, d)); v.K != KindInt || v.I != 31 {
		t.Errorf("date-date = %v", v)
	}
}

func TestIntervalArith(t *testing.T) {
	d := MustDate("1998-12-01")
	if v := mustOK(t)(Sub(d, NewInterval(90, "day"))); v.DateString() != "1998-09-02" {
		t.Errorf("- 90 day = %v", v.DateString())
	}
	if v := mustOK(t)(Add(MustDate("1993-07-01"), NewInterval(3, "month"))); v.DateString() != "1993-10-01" {
		t.Errorf("+ 3 month = %v", v.DateString())
	}
	if v := mustOK(t)(Add(MustDate("1994-01-01"), NewInterval(1, "year"))); v.DateString() != "1995-01-01" {
		t.Errorf("+ 1 year = %v", v.DateString())
	}
	if v := mustOK(t)(Add(NewInterval(1, "day"), MustDate("1994-01-01"))); v.DateString() != "1994-01-02" {
		t.Errorf("interval+date = %v", v.DateString())
	}
	if _, err := Add(d, NewInterval(1, "fortnight")); err == nil {
		t.Error("unknown interval unit should error")
	}
	if _, err := Mul(d, NewInterval(1, "day")); err == nil {
		t.Error("date * interval should error")
	}
}

func TestNeg(t *testing.T) {
	if v := mustOK(t)(Neg(NewInt(5))); v.I != -5 {
		t.Errorf("-5 = %v", v)
	}
	if v := mustOK(t)(Neg(NewFloat(2.5))); v.F != -2.5 {
		t.Errorf("-2.5 = %v", v)
	}
}

// Property: int addition is commutative and subtraction inverts it.
func TestArithProperties(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := NewInt(int64(a)), NewInt(int64(b))
		s1, _ := Add(x, y)
		s2, _ := Add(y, x)
		back, _ := Sub(s1, y)
		return s1.I == s2.I && back.I == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
