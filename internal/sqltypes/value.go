// Package sqltypes defines the value model shared by every layer of the
// Apuama stack: the SQL parser, the per-node execution engines, the
// middleware and the result composer. Values are small tagged structs
// rather than interfaces so that rows can be stored and compared without
// per-datum heap allocations.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the storage types the engine supports. The set mirrors
// what TPC-H needs from PostgreSQL: integers, decimals (stored as float64,
// see DESIGN.md), fixed/variable text, dates and booleans.
type Kind uint8

// The supported value kinds. KindNull is the zero value so that a zero
// Value is a SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate     // days since 1970-01-01, stored in I
	KindBool     // 0/1 stored in I
	KindInterval // count in I, unit ("day", "month", "year") in S
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindBool:
		return "BOOLEAN"
	case KindInterval:
		return "INTERVAL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL datum. The active representation depends on K:
// integers, dates and booleans live in I, floats in F, strings in S.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Row is a tuple of values. Rows are positional; column names live in the
// schema that accompanies a result set or relation.
type Row []Value

// Clone returns a deep copy of the row (Value is value-typed already, so a
// slice copy suffices; string contents are immutable in Go).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Convenience constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// NewInt returns a BIGINT value.
func NewInt(v int64) Value { return Value{K: KindInt, I: v} }

// NewFloat returns a DOUBLE value.
func NewFloat(v float64) Value { return Value{K: KindFloat, F: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{K: KindString, S: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	if v {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// NewDate returns a DATE value holding the given number of days since the
// Unix epoch.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// NewInterval returns an INTERVAL value of n units, where unit is one of
// "day", "month" or "year".
func NewInterval(n int64, unit string) Value {
	return Value{K: KindInterval, I: n, S: unit}
}

// epoch is the zero day for KindDate values.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// ParseDate converts an ISO "YYYY-MM-DD" literal into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null(), fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return NewDate(int64(t.Sub(epoch).Hours() / 24)), nil
}

// MustDate is ParseDate for trusted literals; it panics on error.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// DateString renders a DATE value as "YYYY-MM-DD".
func (v Value) DateString() string {
	return epoch.AddDate(0, 0, int(v.I)).Format("2006-01-02")
}

// DateYMD decomposes a DATE value into calendar year, month and day
// (EXTRACT support).
func (v Value) DateYMD() (year, month, day int) {
	t := epoch.AddDate(0, 0, int(v.I))
	return t.Year(), int(t.Month()), t.Day()
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool reports the truth value of a BOOLEAN (NULL and non-booleans are
// false; the three-valued logic helpers live in the expression evaluator).
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// AsFloat coerces a numeric value to float64. Non-numeric values yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt coerces a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool { return v.K == KindInt || v.K == KindFloat }

// String renders the value for display and for wire encoding of errors.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return v.DateString()
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInterval:
		return fmt.Sprintf("interval '%d' %s", v.I, v.S)
	default:
		return fmt.Sprintf("<bad kind %d>", uint8(v.K))
	}
}

// Compare orders two values. NULL sorts before every non-NULL value (the
// PostgreSQL NULLS FIRST default for ascending order is applied by the sort
// operator, not here). Numeric kinds compare by numeric value so that
// INT 3 == FLOAT 3.0; dates compare as day numbers; strings compare
// lexicographically. Comparing a string with a number is defined (string
// sorts after) so the composer can sort heterogeneous columns
// deterministically.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	ar, br := rank(a.K), rank(b.K)
	if ar != br {
		if ar < br {
			return -1
		}
		return 1
	}
	switch ar {
	case rankNumeric:
		// Compare in float space unless both are int-backed.
		if a.K != KindFloat && b.K != KindFloat {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case rankString:
		return strings.Compare(a.S, b.S)
	default:
		return 0
	}
}

// rank buckets kinds into comparable families.
const (
	rankNumeric = iota // ints, floats, dates, bools share numeric order
	rankString
)

func rank(k Kind) int {
	if k == KindString {
		return rankString
	}
	return rankNumeric
}

// Equal reports SQL equality ignoring representation (3 == 3.0).
func Equal(a, b Value) bool { return !a.IsNull() && !b.IsNull() && Compare(a, b) == 0 }

// Hash returns a stable hash used by hash joins and hash aggregation.
// Values that compare equal hash equally (ints and equal floats included).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	switch v.K {
	case KindNull:
		mix(0)
	case KindString:
		mix(1)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	default:
		// Numeric family: hash the float64 bit pattern of the numeric
		// value so INT 3 and FLOAT 3.0 collide as required by Equal.
		mix(2)
		bits := math.Float64bits(v.AsFloat())
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	}
	return h
}

// HashRow hashes a full tuple (used for group-by keys).
func HashRow(r Row) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range r {
		h = (h ^ v.Hash()) * prime64
	}
	return h
}

// RowsEqual reports positional equality of two tuples using SQL equality,
// except that NULLs are treated as equal (group-by semantics).
func RowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNull() != b[i].IsNull() {
			return false
		}
		if !a[i].IsNull() && Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// Width returns the simulated on-disk width of the value in bytes. It is
// used by the storage layer to decide how many rows fit on a page, which in
// turn drives the buffer-cache behaviour central to the paper's speedup
// results.
func (v Value) Width() int {
	switch v.K {
	case KindString:
		return 4 + len(v.S)
	default:
		return 8
	}
}

// RowWidth returns the simulated width of a tuple including a small header.
func RowWidth(r Row) int {
	w := 16 // simulated tuple header (mirrors PostgreSQL's ~23B + alignment)
	for _, v := range r {
		w += v.Width()
	}
	return w
}
