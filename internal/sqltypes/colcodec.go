package sqltypes

// Binary (de)serialization of ColVec for the internal/proto wire
// format: every payload group is written as a raw little-endian buffer
// so the receiving side can reconstruct the vector by slicing the frame
// payload — no per-value decode loop and no per-value allocation. The
// encoder pads numeric arrays to their natural alignment relative to
// the start of the destination buffer, so a decoder handed that exact
// buffer can reinterpret the bytes in place; when the payload lands at
// an unaligned address anyway (or the host is big-endian) the decoder
// transparently falls back to a copying path.
//
// Vector layout (all integers little-endian; offsets padded relative to
// the start of the buffer handed to DecodeColVec):
//
//	u8  kind           (Kind; KindInterval never appears — the block
//	                    layer ships interval columns as tagged values)
//	u8  enc            0=i64  1=f64  2=plain-string  3=dict  4=dict+RLE
//	u8  hasNulls       0/1
//	u8  reserved       0
//	u32 n              row count
//	n bytes            null flags, one 0/1 byte per row (if hasNulls)
//
//	enc 0/1:  pad8; n×8 bytes of int64 / float64 payload
//	enc 2:    pad4; u32 blobLen; (n+1)×u32 cumulative offsets; blob
//	enc 3:    pad4; u32 dictN; (dictN+1)×u32 offsets; dict blob;
//	          pad4; n×u32 codes
//	enc 4:    pad4; u32 dictN; (dictN+1)×u32 offsets; dict blob;
//	          pad4; u32 runs; runs×u32 runCodes; runs×u32 runEnds
//
// Zone maps (Min/Max) are not shipped: the receiver of a result stream
// never prunes, and leaving them NULL keeps the frame minimal.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// Vector encodings on the wire.
const (
	colEncI64  = 0
	colEncF64  = 1
	colEncStr  = 2
	colEncDict = 3
	colEncRLE  = 4
)

// maxVecRows bounds a decoded vector's claimed row count so crafted
// frames cannot demand absurd allocations before validation catches
// them (wire batches are DefaultBatchCapacity rows; this is headroom).
const maxVecRows = 1 << 20

var errColVec = errors.New("sqltypes: malformed column vector")

// hostLittleEndian gates the reinterpret-cast fast paths; big-endian
// hosts take the per-value copy paths and stay wire-compatible.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ColumnKind scans column col of rows and reports the single non-NULL
// kind found. ok is false when the column mixes kinds or contains
// interval values (whose unit string cannot ride a typed array) — such
// columns must be shipped as tagged values. An all-NULL column reports
// (KindNull, true).
func ColumnKind(rows []Row, col int) (Kind, bool) {
	kind := KindNull
	for _, r := range rows {
		v := r[col]
		if v.IsNull() {
			continue
		}
		if v.K == KindInterval {
			return KindNull, false
		}
		if kind == KindNull {
			kind = v.K
		} else if v.K != kind {
			return KindNull, false
		}
	}
	return kind, true
}

// append helpers — plain byte appends; pad aligns relative to the start
// of dst, which the block encoder guarantees is the frame payload start.

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendPad(dst []byte, align int) []byte {
	for len(dst)%align != 0 {
		dst = append(dst, 0)
	}
	return dst
}

// appendI64s appends the raw little-endian image of v.
func appendI64s(dst []byte, v []int64) []byte {
	if len(v) == 0 {
		return dst
	}
	if hostLittleEndian {
		return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)...)
	}
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

func appendF64s(dst []byte, v []float64) []byte {
	if len(v) == 0 {
		return dst
	}
	if hostLittleEndian {
		return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)...)
	}
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, *(*uint64)(unsafe.Pointer(&x)))
	}
	return dst
}

func appendI32s(dst []byte, v []int32) []byte {
	if len(v) == 0 {
		return dst
	}
	if hostLittleEndian {
		return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)...)
	}
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
	}
	return dst
}

// appendStrings appends a string list as cumulative u32 offsets
// followed by the concatenated blob.
func appendStrings(dst []byte, ss []string) []byte {
	var blob int
	for _, s := range ss {
		blob += len(s)
	}
	dst = appendU32(dst, uint32(len(ss)))
	off := uint32(0)
	dst = appendU32(dst, off)
	for _, s := range ss {
		off += uint32(len(s))
		dst = appendU32(dst, off)
	}
	if cap(dst)-len(dst) < blob {
		grown := make([]byte, len(dst), len(dst)+blob)
		copy(grown, dst)
		dst = grown
	}
	for _, s := range ss {
		dst = append(dst, s...)
	}
	return dst
}

// AppendColVec appends the wire form of c to dst and returns the
// extended buffer. Alignment padding is computed relative to dst's
// start, so the decoder must be handed a buffer whose first byte is
// dst's first byte (the proto block layer builds frame payloads that
// way).
func (c *ColVec) AppendColVec(dst []byte) []byte {
	enc := byte(colEncI64)
	switch {
	case c.Kind == KindFloat:
		enc = colEncF64
	case c.RunEnds != nil:
		enc = colEncRLE
	case c.Dict != nil:
		enc = colEncDict
	case c.Str != nil:
		enc = colEncStr
	}
	hasNulls := byte(0)
	if c.Nulls != nil {
		hasNulls = 1
	}
	dst = append(dst, byte(c.Kind), enc, hasNulls, 0)
	dst = appendU32(dst, uint32(c.n))
	if c.Nulls != nil {
		for _, nl := range c.Nulls {
			if nl {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	switch enc {
	case colEncI64:
		dst = appendPad(dst, 8)
		dst = appendI64s(dst, c.I64)
	case colEncF64:
		dst = appendPad(dst, 8)
		dst = appendF64s(dst, c.F64)
	case colEncStr:
		dst = appendPad(dst, 4)
		dst = appendStrings(dst, c.Str)
	case colEncDict:
		dst = appendPad(dst, 4)
		dst = appendStrings(dst, c.Dict)
		dst = appendPad(dst, 4)
		dst = appendI32s(dst, c.Codes)
	case colEncRLE:
		dst = appendPad(dst, 4)
		dst = appendStrings(dst, c.Dict)
		dst = appendPad(dst, 4)
		dst = appendU32(dst, uint32(len(c.RunCodes)))
		dst = appendI32s(dst, c.RunCodes)
		dst = appendI32s(dst, c.RunEnds)
	}
	return dst
}

// ColScratch holds the reusable encode-side state for AppendColumn so a
// sending loop pays no per-batch allocations for dictionary building.
// One scratch per stream; not safe for concurrent use.
type ColScratch struct {
	codes    []int32
	dict     []string
	runCodes []int32
	runEnds  []int32
	codeOf   map[string]int32
}

// AppendColumn appends the wire form of column col — the same bytes
// BuildColVec(kind).AppendColVec would produce — directly from the rows,
// in one analysis pass and one emit pass with no intermediate vector.
// This is the sending loop's hot path: BuildColVec materializes typed
// slices only to copy them into the frame, which profiles as a third of
// a stream's CPU. Returns ok=false (dst untouched) for columns the
// vector layout cannot carry: mixed kinds or interval values.
func AppendColumn(dst []byte, rows []Row, col int, sc *ColScratch) ([]byte, bool) {
	kind := KindNull
	hasNulls := byte(0)
	for _, r := range rows {
		v := r[col]
		if v.IsNull() {
			hasNulls = 1
			continue
		}
		if v.K == KindInterval {
			return dst, false
		}
		if kind == KindNull {
			kind = v.K
		} else if v.K != kind {
			return dst, false
		}
	}
	if kind == KindString {
		return appendStringColumn(dst, rows, col, hasNulls, sc), true
	}
	enc := byte(colEncI64)
	if kind == KindFloat {
		enc = colEncF64
	}
	dst = append(dst, byte(kind), enc, hasNulls, 0)
	dst = appendU32(dst, uint32(len(rows)))
	if hasNulls == 1 {
		dst = appendNullFlags(dst, rows, col)
	}
	dst = appendPad(dst, 8)
	if kind == KindFloat {
		for _, r := range rows {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r[col].F))
		}
	} else {
		for _, r := range rows {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(r[col].I))
		}
	}
	return dst, true
}

func appendNullFlags(dst []byte, rows []Row, col int) []byte {
	for _, r := range rows {
		if r[col].IsNull() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// appendStringColumn mirrors buildString's encoding choice — dictionary
// (with RLE when run-heavy) below dictMaxNDV distinct values, plain
// otherwise — emitting straight into dst. NULL rows contribute "" to
// the stream, exactly as buildString reads them.
func appendStringColumn(dst []byte, rows []Row, col int, hasNulls byte, sc *ColScratch) []byte {
	if sc == nil {
		sc = &ColScratch{}
	}
	if sc.codeOf == nil {
		sc.codeOf = make(map[string]int32, dictMaxNDV)
	} else {
		clear(sc.codeOf)
	}
	sc.codes = sc.codes[:0]
	sc.dict = sc.dict[:0]
	runs := 1
	plain := false
	var prev int32
	for i, r := range rows {
		s := r[col].S
		code, ok := sc.codeOf[s]
		if !ok {
			if len(sc.dict) >= dictMaxNDV {
				plain = true
				break
			}
			code = int32(len(sc.dict))
			sc.dict = append(sc.dict, s)
			sc.codeOf[s] = code
		}
		sc.codes = append(sc.codes, code)
		if i > 0 && code != prev {
			runs++
		}
		prev = code
	}
	n := len(rows)
	if plain {
		dst = append(dst, byte(KindString), colEncStr, hasNulls, 0)
		dst = appendU32(dst, uint32(n))
		if hasNulls == 1 {
			dst = appendNullFlags(dst, rows, col)
		}
		dst = appendPad(dst, 4)
		dst = appendU32(dst, uint32(n))
		off := uint32(0)
		dst = appendU32(dst, off)
		for _, r := range rows {
			off += uint32(len(r[col].S))
			dst = appendU32(dst, off)
		}
		for _, r := range rows {
			dst = append(dst, r[col].S...)
		}
		return dst
	}
	enc := byte(colEncDict)
	if n > 0 && runs*2 < n {
		enc = colEncRLE
	}
	dst = append(dst, byte(KindString), enc, hasNulls, 0)
	dst = appendU32(dst, uint32(n))
	if hasNulls == 1 {
		dst = appendNullFlags(dst, rows, col)
	}
	dst = appendPad(dst, 4)
	dst = appendStrings(dst, sc.dict)
	dst = appendPad(dst, 4)
	if enc == colEncDict {
		return appendI32s(dst, sc.codes)
	}
	sc.runCodes = sc.runCodes[:0]
	sc.runEnds = sc.runEnds[:0]
	for i, code := range sc.codes {
		if i == 0 || code != sc.runCodes[len(sc.runCodes)-1] {
			sc.runCodes = append(sc.runCodes, code)
			sc.runEnds = append(sc.runEnds, int32(i+1))
		} else {
			sc.runEnds[len(sc.runEnds)-1] = int32(i + 1)
		}
	}
	dst = appendU32(dst, uint32(len(sc.runCodes)))
	dst = appendI32s(dst, sc.runCodes)
	dst = appendI32s(dst, sc.runEnds)
	return dst
}

// colReader walks a decode buffer with sticky-error bounds checking:
// every getter returns a zero value once the buffer is exhausted, so
// arbitrary (fuzzed) input can never index out of range.
type colReader struct {
	buf []byte
	off int
	err error
}

func (r *colReader) fail() {
	if r.err == nil {
		r.err = errColVec
	}
}

func (r *colReader) take(n int) []byte {
	if r.err != nil || n < 0 || n > len(r.buf)-r.off {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *colReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *colReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *colReader) pad(align int) {
	if rem := r.off % align; rem != 0 {
		r.take(align - rem)
	}
}

// i64View reinterprets b as n int64s, zero-copy when the bytes are
// 8-aligned on a little-endian host.
func i64View(b []byte, n int) []int64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func f64View(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		u := binary.LittleEndian.Uint64(b[i*8:])
		out[i] = *(*float64)(unsafe.Pointer(&u))
	}
	return out
}

func i32View(b []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// unsafeString views b as a string without copying. The caller must
// guarantee b is never mutated afterwards — decode buffers are owned by
// the decoded result and are not recycled.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// readStrings decodes an offsets+blob string list of expected length
// want (-1 accepts any). Contents alias the decode buffer.
func (r *colReader) readStrings(want int) []string {
	n := int(r.u32())
	if r.err != nil || n > maxVecRows || (want >= 0 && n != want) {
		r.fail()
		return nil
	}
	offs := r.take((n + 1) * 4)
	if offs == nil {
		return nil
	}
	blobLen := int(binary.LittleEndian.Uint32(offs[n*4:]))
	blob := r.take(blobLen)
	if r.err != nil || binary.LittleEndian.Uint32(offs) != 0 {
		r.fail()
		return nil
	}
	out := make([]string, n)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		end := binary.LittleEndian.Uint32(offs[(i+1)*4:])
		if end < prev || int(end) > blobLen {
			r.fail()
			return nil
		}
		out[i] = unsafeString(blob[prev:end])
		prev = end
	}
	return out
}

// DecodeColVec reconstructs one vector from the wire form at the start
// of buf, returning the vector and the number of bytes consumed. The
// result aliases buf (typed-array views and string contents), so buf
// must stay immutable for the vector's lifetime. Malformed input of any
// shape returns an error, never a panic, and every dictionary code and
// run boundary is validated so ColVec.Value can be called safely on the
// result. Min/Max zone maps are not transported and stay NULL.
func DecodeColVec(buf []byte) (*ColVec, int, error) {
	return DecodeColVecOffset(buf, 0)
}

// DecodeColVecOffset decodes a vector that begins at buf[off], keeping
// alignment padding relative to buf's start — the encoder's reference
// point when vectors are appended mid-buffer (the proto block layer).
// Returns the vector and the bytes consumed from off.
func DecodeColVecOffset(buf []byte, off int) (*ColVec, int, error) {
	if off < 0 || off > len(buf) {
		return nil, 0, errColVec
	}
	r := &colReader{buf: buf, off: off}
	kind := Kind(r.u8())
	enc := r.u8()
	hasNulls := r.u8()
	r.u8() // reserved
	n := int(r.u32())
	if r.err != nil || n > maxVecRows || hasNulls > 1 {
		return nil, 0, errColVec
	}
	switch {
	case kind == KindFloat && enc == colEncF64:
	case kind == KindString && (enc == colEncStr || enc == colEncDict || enc == colEncRLE):
	case (kind == KindNull || kind == KindInt || kind == KindDate || kind == KindBool) && enc == colEncI64:
	default:
		return nil, 0, fmt.Errorf("%w: kind %d enc %d", errColVec, kind, enc)
	}
	c := &ColVec{Kind: kind, n: n}
	if hasNulls == 1 && n > 0 {
		nb := r.take(n)
		if nb == nil {
			return nil, 0, errColVec
		}
		for _, b := range nb {
			if b > 1 {
				return nil, 0, errColVec
			}
		}
		// A 0/1 byte is a valid Go bool, so the flags can be viewed in
		// place on any host (bools have no endianness).
		c.Nulls = unsafe.Slice((*bool)(unsafe.Pointer(&nb[0])), n)
	}
	switch enc {
	case colEncI64:
		r.pad(8)
		b := r.take(n * 8)
		if b == nil && n > 0 {
			return nil, 0, errColVec
		}
		c.I64 = i64View(b, n)
	case colEncF64:
		r.pad(8)
		b := r.take(n * 8)
		if b == nil && n > 0 {
			return nil, 0, errColVec
		}
		c.F64 = f64View(b, n)
	case colEncStr:
		r.pad(4)
		c.Str = r.readStrings(n)
	case colEncDict:
		r.pad(4)
		c.Dict = r.readStrings(-1)
		r.pad(4)
		b := r.take(n * 4)
		if r.err != nil {
			return nil, 0, errColVec
		}
		c.Codes = i32View(b, n)
		for _, code := range c.Codes {
			if code < 0 || int(code) >= len(c.Dict) {
				return nil, 0, errColVec
			}
		}
	case colEncRLE:
		r.pad(4)
		c.Dict = r.readStrings(-1)
		r.pad(4)
		runs := int(r.u32())
		if r.err != nil || runs > n || (n > 0 && runs == 0) {
			return nil, 0, errColVec
		}
		rc := r.take(runs * 4)
		re := r.take(runs * 4)
		if r.err != nil {
			return nil, 0, errColVec
		}
		c.RunCodes = i32View(rc, runs)
		c.RunEnds = i32View(re, runs)
		prev := int32(0)
		for i := range c.RunCodes {
			if c.RunCodes[i] < 0 || int(c.RunCodes[i]) >= len(c.Dict) {
				return nil, 0, errColVec
			}
			if c.RunEnds[i] <= prev {
				return nil, 0, errColVec
			}
			prev = c.RunEnds[i]
		}
		if runs > 0 && int(prev) != n {
			return nil, 0, errColVec
		}
	}
	if r.err != nil {
		return nil, 0, errColVec
	}
	return c, r.off - off, nil
}
