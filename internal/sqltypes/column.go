package sqltypes

// Column-major vectors: the in-memory layout of one relation column
// across a segment of rows. Fixed-width kinds (ints, floats, dates,
// booleans) are stored as flat typed slices; string columns choose
// between a plain slice and dictionary encoding (with run-length
// compression of the code stream when the data is run-heavy, as sorted
// or semi-sorted low-NDV columns are). Every vector carries its own
// min/max zone map over the non-NULL values, which is what segment
// pruning reads.

// dictMaxNDV bounds dictionary encoding: columns with more distinct
// strings than this stay plain (the dictionary would not pay for the
// code stream). 256 matches the classic one-byte-code sweet spot even
// though codes are stored as int32 here.
const dictMaxNDV = 256

// ColVec is one column of a segment in columnar form.
type ColVec struct {
	Kind Kind

	// Exactly one of the payload groups below is active, per Kind and
	// chosen encoding.
	I64 []int64   // ints, dates, booleans, intervals (count part)
	F64 []float64 // floats
	Str []string  // plain string payload

	// Dictionary encoding (low-NDV strings): Dict holds the distinct
	// values in first-appearance order, Codes the per-row indexes.
	Dict  []string
	Codes []int32

	// Run-length compression of the code stream, used instead of Codes
	// when the column is run-heavy: RunCodes[i] repeats until row
	// RunEnds[i] (exclusive, cumulative).
	RunCodes []int32
	RunEnds  []int32

	// Nulls marks NULL rows; nil when the column has none.
	Nulls []bool

	// Min and Max are the zone map: the extremes of the non-NULL values
	// under Compare. Both are NULL values when every row is NULL.
	Min, Max Value

	n int
}

// Len returns the number of rows in the vector.
func (c *ColVec) Len() int { return c.n }

// IsDict reports whether the vector is dictionary-encoded.
func (c *ColVec) IsDict() bool { return c.Dict != nil }

// IsRLE reports whether the dictionary code stream is run-length
// compressed.
func (c *ColVec) IsRLE() bool { return c.RunEnds != nil }

// Value reconstructs row i as a Value. Scans stream pre-built row views
// instead (see storage.Segment); this accessor serves encodings, tests
// and tooling.
func (c *ColVec) Value(i int) Value {
	if c.Nulls != nil && c.Nulls[i] {
		return Null()
	}
	switch c.Kind {
	case KindFloat:
		return NewFloat(c.F64[i])
	case KindString:
		if c.Dict != nil {
			return NewString(c.Dict[c.code(i)])
		}
		return NewString(c.Str[i])
	default:
		return Value{K: c.Kind, I: c.I64[i]}
	}
}

// code resolves row i's dictionary code through either the flat or the
// run-length form.
func (c *ColVec) code(i int) int32 {
	if c.RunEnds == nil {
		return c.Codes[i]
	}
	lo, hi := 0, len(c.RunEnds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int32(i) < c.RunEnds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return c.RunCodes[lo]
}

// EncodedBytes returns the simulated size of the vector: the storage
// accounting the segment-bytes gauge reports. Fixed-width values cost 8
// bytes, plain strings their Value width, dictionary codes 4 bytes per
// row (or 8 per run under RLE) plus the dictionary itself, and a null
// bitmap one byte per row.
func (c *ColVec) EncodedBytes() int64 {
	var b int64
	switch {
	case c.RunEnds != nil:
		b = int64(len(c.RunEnds)) * 8
	case c.Codes != nil:
		b = int64(len(c.Codes)) * 4
	case c.Str != nil:
		for _, s := range c.Str {
			b += int64(4 + len(s))
		}
	case c.F64 != nil:
		b = int64(len(c.F64)) * 8
	default:
		b = int64(len(c.I64)) * 8
	}
	for _, s := range c.Dict {
		b += int64(4 + len(s))
	}
	if c.Nulls != nil {
		b += int64(len(c.Nulls))
	}
	return b
}

// BuildColVec converts column col of rows into columnar form, choosing
// the encoding and computing the zone map in one pass over the data.
// The min/max tracking is specialized per kind — the generic Compare is
// a measurable per-row cost on the wire encode path — falling back to
// Compare only for the stray mixed-kind value so the ordering semantics
// stay identical.
func BuildColVec(kind Kind, rows []Row, col int) *ColVec {
	c := &ColVec{Kind: kind, n: len(rows)}
	var nulls []bool
	markNull := func(i int) {
		if nulls == nil {
			nulls = make([]bool, len(rows))
		}
		nulls[i] = true
	}
	// zone extends the zone map the slow generic way.
	zone := func(v Value) {
		if c.Min.IsNull() || Compare(v, c.Min) < 0 {
			c.Min = v
		}
		if c.Max.IsNull() || Compare(v, c.Max) > 0 {
			c.Max = v
		}
	}
	// fast reports whether v and both current extremes are exactly the
	// expected kind, so the typed comparison below agrees with Compare.
	// The first non-NULL value (extremes still KindNull) and any stray
	// mixed-kind value route through zone instead.
	fast := func(v Value) bool {
		return v.K == kind && c.Min.K == kind && c.Max.K == kind
	}
	switch kind {
	case KindString:
		for i, r := range rows {
			v := r[col]
			switch {
			case v.IsNull():
				markNull(i)
			case !fast(v):
				zone(v)
			case v.S < c.Min.S:
				c.Min = v
			case v.S > c.Max.S:
				c.Max = v
			}
		}
		c.Nulls = nulls
		c.buildString(rows, col)
		return c
	case KindFloat:
		c.F64 = make([]float64, len(rows))
		for i, r := range rows {
			v := r[col]
			switch {
			case v.IsNull():
				markNull(i)
				continue
			case !fast(v):
				zone(v)
			case v.F < c.Min.F:
				c.Min = v
			case v.F > c.Max.F:
				c.Max = v
			}
			c.F64[i] = v.F
		}
		c.Nulls = nulls
		return c
	default:
		c.I64 = make([]int64, len(rows))
		for i, r := range rows {
			v := r[col]
			switch {
			case v.IsNull():
				markNull(i)
				continue
			case !fast(v):
				zone(v)
			case v.I < c.Min.I:
				c.Min = v
			case v.I > c.Max.I:
				c.Max = v
			}
			c.I64[i] = v.I
		}
		c.Nulls = nulls
		return c
	}
}

// buildString picks plain, dictionary or dictionary+RLE form for a
// string column.
func (c *ColVec) buildString(rows []Row, col int) {
	codeOf := make(map[string]int32, dictMaxNDV)
	var dict []string
	codes := make([]int32, len(rows))
	runs := 1
	for i, r := range rows {
		s := r[col].S
		code, ok := codeOf[s]
		if !ok {
			if len(dict) >= dictMaxNDV {
				// Too many distinct values: fall back to plain storage.
				c.Str = make([]string, len(rows))
				for j, rr := range rows {
					c.Str[j] = rr[col].S
				}
				return
			}
			code = int32(len(dict))
			dict = append(dict, s)
			codeOf[s] = code
		}
		codes[i] = code
		if i > 0 && codes[i] != codes[i-1] {
			runs++
		}
	}
	c.Dict = dict
	// RLE pays when a run entry (8B) replaces its run of 4B codes, i.e.
	// when the average run length exceeds 2.
	if len(rows) > 0 && runs*2 < len(rows) {
		c.RunCodes = make([]int32, 0, runs)
		c.RunEnds = make([]int32, 0, runs)
		for i := 0; i < len(codes); i++ {
			if len(c.RunCodes) == 0 || codes[i] != c.RunCodes[len(c.RunCodes)-1] {
				c.RunCodes = append(c.RunCodes, codes[i])
				c.RunEnds = append(c.RunEnds, int32(i+1))
			} else {
				c.RunEnds[len(c.RunEnds)-1] = int32(i + 1)
			}
		}
		return
	}
	c.Codes = codes
}
