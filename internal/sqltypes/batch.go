package sqltypes

import (
	"sync"
	"sync/atomic"
)

// DefaultBatchCapacity is the row capacity of pooled batches. 256 rows
// keeps a batch of TPC-H-width tuples within L2 cache while amortizing
// per-call overhead across the operator tree (the MonetDB/X100 sizing
// argument: large enough to vectorize, small enough to stay cached).
const DefaultBatchCapacity = 256

// Batch is a fixed-capacity slab of rows: the unit of data flow of the
// batch-streaming execution path. Operators fill a caller-owned batch in
// place; the cluster layers ship whole batches over channels and the
// wire.
//
// Ownership contract (see DESIGN.md "Execution model"):
//
//   - The consumer owns the Batch container and calls Reset before
//     handing it back to a producer; the producer only appends.
//   - Row slices appended to a batch remain valid after the batch is
//     reset or reused — they reference stable storage (heap pages or
//     freshly built tuples), never batch-owned scratch memory. A
//     consumer may therefore retain Rows beyond the batch's lifetime
//     without copying.
//   - A batch obtained from GetBatch must be returned with PutBatch by
//     whichever layer sees it last.
type Batch struct {
	Rows []Row
}

// NewBatch returns an unpooled batch with the given row capacity
// (capacity <= 0 selects DefaultBatchCapacity).
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchCapacity
	}
	return &Batch{Rows: make([]Row, 0, capacity)}
}

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Cap returns the batch's row capacity.
func (b *Batch) Cap() int { return cap(b.Rows) }

// Full reports whether the batch has reached capacity.
func (b *Batch) Full() bool { return len(b.Rows) == cap(b.Rows) }

// Append adds one row. Appending beyond capacity grows the batch (legal
// but defeats pooling; operators check Full instead).
func (b *Batch) Append(r Row) { b.Rows = append(b.Rows, r) }

// Truncate drops rows beyond n, clearing the dropped references (LIMIT
// trims a child's overshoot this way).
func (b *Batch) Truncate(n int) {
	if n < 0 || n >= len(b.Rows) {
		return
	}
	for i := n; i < len(b.Rows); i++ {
		b.Rows[i] = nil
	}
	b.Rows = b.Rows[:n]
}

// Reset empties the batch for reuse, clearing row references so the
// slab does not pin garbage.
func (b *Batch) Reset() {
	for i := range b.Rows {
		b.Rows[i] = nil
	}
	b.Rows = b.Rows[:0]
}

// batchPool recycles DefaultBatchCapacity batches across queries. The
// miss counter is bumped only when the pool has to allocate, so
// gets-vs-misses is the pool hit rate exported by the metrics layer.
var batchPool = sync.Pool{New: func() any {
	batchPoolMisses.Add(1)
	return &Batch{Rows: make([]Row, 0, DefaultBatchCapacity)}
}}

var batchPoolGets, batchPoolMisses atomic.Int64

// GetBatch takes an empty batch from the pool.
func GetBatch() *Batch {
	batchPoolGets.Add(1)
	return batchPool.Get().(*Batch)
}

// PutBatch resets the batch and returns it to the pool. Only
// DefaultBatchCapacity batches are pooled; oddly-sized ones (from
// NewBatch, or grown past capacity) are dropped for the GC.
func PutBatch(b *Batch) {
	if b == nil || cap(b.Rows) != DefaultBatchCapacity {
		return
	}
	b.Reset()
	batchPool.Put(b)
}

// BatchPoolStats reports cumulative pool activity: total GetBatch calls
// and how many had to allocate. hit rate = (gets-misses)/gets.
func BatchPoolStats() (gets, misses int64) {
	return batchPoolGets.Load(), batchPoolMisses.Load()
}
