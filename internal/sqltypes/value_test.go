package sqltypes

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "BIGINT", KindFloat: "DOUBLE",
		KindString: "VARCHAR", KindDate: "DATE", KindBool: "BOOLEAN",
		KindInterval: "INTERVAL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() is not null")
	}
	if v := NewInt(42); v.K != KindInt || v.I != 42 || v.AsInt() != 42 || v.AsFloat() != 42 {
		t.Errorf("NewInt: %+v", v)
	}
	if v := NewFloat(2.5); v.K != KindFloat || v.AsFloat() != 2.5 || v.AsInt() != 2 {
		t.Errorf("NewFloat: %+v", v)
	}
	if v := NewString("hi"); v.K != KindString || v.S != "hi" {
		t.Errorf("NewString: %+v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Error("NewBool(true) not true")
	}
	if v := NewBool(false); v.Bool() {
		t.Error("NewBool(false) is true")
	}
	if NewInt(1).Bool() {
		t.Error("int should not be Bool()-true")
	}
	if Null().AsFloat() != 0 || Null().AsInt() != 0 {
		t.Error("null coercions should be 0")
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1970-01-01")
	if err != nil || v.I != 0 {
		t.Fatalf("epoch: %v %v", v, err)
	}
	v, err = ParseDate("1970-01-11")
	if err != nil || v.I != 10 {
		t.Fatalf("ten days: %v %v", v, err)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for bad date")
	}
	if got := MustDate("1998-12-01").DateString(); got != "1998-12-01" {
		t.Errorf("round trip: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDate should panic on bad input")
		}
	}()
	MustDate("bogus")
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("abc"), "abc"},
		{MustDate("1994-01-01"), "1994-01-01"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInterval(3, "month"), "interval '3' month"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), NewInt(0), -1},
		{NewInt(0), Null(), 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(3), NewFloat(3.0), 0},
		{NewFloat(3.5), NewInt(3), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("a"), NewString("a"), 0},
		{MustDate("1994-01-01"), MustDate("1995-01-01"), -1},
		{NewInt(5), NewString("5"), -1}, // numbers sort before strings
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualAndHashConsistency(t *testing.T) {
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("3 == 3.0 expected")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false under SQL equality")
	}
	if NewInt(3).Hash() != NewFloat(3).Hash() {
		t.Error("equal values must hash equally")
	}
	if NewString("x").Hash() == NewString("y").Hash() {
		t.Error("suspicious hash collision on trivial inputs")
	}
}

// randomValue generates values across all comparable kinds.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return NewInt(int64(r.Intn(100) - 50))
	case 2:
		return NewFloat(float64(r.Intn(100)-50) / 2)
	case 3:
		return NewString(string(rune('a' + r.Intn(26))))
	default:
		return NewDate(int64(r.Intn(1000)))
	}
}

// Property: Compare is a total order — antisymmetric and transitive on
// random triples, and sorting with it is stable under re-sorting.
func TestCompareTotalOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
	vals := make([]Value, 500)
	for i := range vals {
		vals[i] = randomValue(r)
	}
	sort.SliceStable(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 }) {
		t.Fatal("sorted slice is not sorted")
	}
}

// Property: equal rows hash equally.
func TestHashRowProperty(t *testing.T) {
	f := func(a, b int64, s string) bool {
		r1 := Row{NewInt(a), NewFloat(float64(b)), NewString(s)}
		r2 := Row{NewInt(a), NewFloat(float64(b)), NewString(s)}
		return HashRow(r1) == HashRow(r2) && RowsEqual(r1, r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowsEqual(t *testing.T) {
	if !RowsEqual(Row{Null(), NewInt(1)}, Row{Null(), NewFloat(1)}) {
		t.Error("rows with NULLs in same position and equal numerics should be equal")
	}
	if RowsEqual(Row{NewInt(1)}, Row{NewInt(1), NewInt(2)}) {
		t.Error("length mismatch should not be equal")
	}
	if RowsEqual(Row{Null()}, Row{NewInt(0)}) {
		t.Error("NULL vs 0 should differ")
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].I != 1 {
		t.Error("clone aliases original")
	}
}

func TestWidth(t *testing.T) {
	if NewInt(1).Width() != 8 || NewString("abcd").Width() != 8 {
		t.Errorf("widths: int=%d str=%d", NewInt(1).Width(), NewString("abcd").Width())
	}
	r := Row{NewInt(1), NewString("ab")}
	if got := RowWidth(r); got != 16+8+6 {
		t.Errorf("RowWidth = %d", got)
	}
}
