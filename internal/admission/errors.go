package admission

import (
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is the sentinel every load-shedding rejection matches:
// the cluster refused to queue the query because it could not have
// started before its deadline, the wait queue was full, or the bounded
// queue wait ran out. Shed queries did no work; retrying after the
// attached hint is always safe.
var ErrOverloaded = errors.New("cluster overloaded")

// OverloadError is the typed shed error. It wraps ErrOverloaded (so
// errors.Is(err, ErrOverloaded) holds) and carries a retry-after hint —
// the admission gate's estimate of when a slot will be free.
type OverloadError struct {
	// RetryAfter estimates how long the client should back off before
	// retrying (the gate's queue-drain estimate at shed time).
	RetryAfter time.Duration
	// Reason is the shed class: "queue-full", "deadline" (the context
	// deadline would have expired before the estimated start) or
	// "queue-timeout" (the bounded wait ran out).
	Reason string
	// Detail preserves a server-rendered message verbatim when the error
	// was reconstructed from the wire (see Remote).
	Detail string
}

// Error renders the shed reason and the retry-after hint.
func (e *OverloadError) Error() string {
	if e.Detail != "" {
		return e.Detail
	}
	return fmt.Sprintf("cluster overloaded (%s): retry after %v", e.Reason, e.RetryAfter)
}

// Is makes every OverloadError match the ErrOverloaded sentinel.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// ErrMemoryBudget is the sentinel a query matches when growing its
// memory reservation would exceed the cluster-wide budget and the debt
// was too large (or the bounded wait too long) to ride out.
var ErrMemoryBudget = errors.New("query memory budget exceeded")

// MemoryError is the typed budget-abort error, wrapping ErrMemoryBudget.
type MemoryError struct {
	Requested int64 // bytes the failed Grow asked for
	Held      int64 // bytes the query already held
	Budget    int64 // the cluster-wide budget
	// Detail preserves a server-rendered message verbatim when the error
	// was reconstructed from the wire (see Remote).
	Detail string
}

// Error renders the request against the budget.
func (e *MemoryError) Error() string {
	if e.Detail != "" {
		return e.Detail
	}
	return fmt.Sprintf("query memory budget exceeded: need %d more bytes (holding %d) against a %d-byte budget",
		e.Requested, e.Held, e.Budget)
}

// Is makes every MemoryError match the ErrMemoryBudget sentinel.
func (e *MemoryError) Is(target error) bool { return target == ErrMemoryBudget }

// ErrSlowQuery marks a query aborted by the slow-query killer: it
// exceeded KillMultiple × its class budget of wall-clock time and was
// cancelled cooperatively (the per-morsel ctx checks inside the node
// engines observe the cancellation).
var ErrSlowQuery = errors.New("slow query killed")

// Retryable reports whether err is a load-shedding rejection the client
// should retry after backing off. Memory-budget aborts and slow-query
// kills are deliberately not retryable: resubmitting the same query
// would hit the same budget.
func Retryable(err error) bool { return errors.Is(err, ErrOverloaded) }

// RetryAfter extracts the shed error's retry-after hint (0 when err
// carries none).
func RetryAfter(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// Wire codes for the typed admission errors. The gob wire protocol
// ships errors as strings; these structured codes ride alongside the
// message so a client can rebuild the typed error and errors.Is works
// across the socket (see internal/wire).
const (
	CodeOverloaded   = "overloaded"
	CodeMemoryBudget = "memory-budget"
	CodeSlowQuery    = "slow-query"
)

// Code classifies err for the wire: its structured code and retry-after
// hint. Errors with no admission class return "".
func Code(err error) (string, time.Duration) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded, RetryAfter(err)
	case errors.Is(err, ErrMemoryBudget):
		return CodeMemoryBudget, 0
	case errors.Is(err, ErrSlowQuery):
		return CodeSlowQuery, 0
	}
	return "", 0
}

// Remote rebuilds a typed admission error from its wire code, keeping
// the server-rendered message verbatim. Unknown codes return nil — the
// caller falls back to a plain string error.
func Remote(code, msg string, retryAfter time.Duration) error {
	switch code {
	case CodeOverloaded:
		return &OverloadError{RetryAfter: retryAfter, Detail: msg}
	case CodeMemoryBudget:
		return &MemoryError{Detail: msg}
	case CodeSlowQuery:
		return &remoteError{msg: msg, sentinel: ErrSlowQuery}
	}
	return nil
}

// remoteError carries a verbatim remote message while matching a local
// sentinel through Unwrap.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }
