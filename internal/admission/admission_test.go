package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apuama/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", d, msg)
}

func TestDisabledControllerIsNil(t *testing.T) {
	c := New(Config{})
	if c != nil {
		t.Fatalf("zero config should build a nil controller")
	}
	// Every method must be a safe no-op on nil.
	tk, err := c.Acquire(context.Background(), 3)
	if tk != nil || err != nil {
		t.Fatalf("nil Acquire = (%v, %v), want (nil, nil)", tk, err)
	}
	tk.Release()
	ctx, done := c.Track(context.Background(), 1)
	if ctx == nil {
		t.Fatalf("nil Track must pass the context through")
	}
	done()
	res := c.Reserve(context.Background())
	if err := res.Grow(1 << 30); err != nil {
		t.Fatalf("nil reservation Grow: %v", err)
	}
	res.Release()
	if c.Level() != 0 || c.DegreeCap() != 0 || c.StaleFloor() != 0 || c.HedgingDisabled() {
		t.Fatalf("nil brownout knobs must report full service")
	}
	c.ForceLevel(3)
	c.Close()
	if s := c.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil Snapshot = %+v, want zero", s)
	}
}

func TestGateAdmitsUpToCapacityAndQueuesFIFO(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxQueue: 8})
	defer c.Close()
	ctx := context.Background()

	t1, err := c.Acquire(ctx, 1)
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	t2, err := c.Acquire(ctx, 1)
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}

	// The third acquire must queue until a release.
	got := make(chan error, 1)
	go func() {
		tk, err := c.Acquire(ctx, 1)
		if err == nil {
			tk.Release()
		}
		got <- err
	}()
	waitFor(t, time.Second, func() bool { return c.Snapshot().QueueDepth == 1 }, "third acquire queued")
	select {
	case err := <-got:
		t.Fatalf("third acquire returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	t1.Release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	t2.Release()

	s := c.Snapshot()
	if s.Admitted != 3 || s.Queued != 1 || s.Shed != 0 {
		t.Fatalf("stats = %+v, want 3 admitted / 1 queued / 0 shed", s)
	}
	if s.InUse != 0 {
		t.Fatalf("all released but InUse = %d", s.InUse)
	}
}

func TestWeightsCountAgainstCapacity(t *testing.T) {
	c := New(Config{MaxConcurrent: 4, MaxQueue: 4})
	defer c.Close()
	ctx := context.Background()
	heavy, err := c.Acquire(ctx, 3)
	if err != nil {
		t.Fatalf("heavy acquire: %v", err)
	}
	light, err := c.Acquire(ctx, 1)
	if err != nil {
		t.Fatalf("light acquire: %v", err)
	}
	if got := c.Snapshot().InUse; got != 4 {
		t.Fatalf("InUse = %d, want 4", got)
	}
	// A third query of any weight must queue now.
	done := make(chan struct{})
	go func() {
		tk, err := c.Acquire(ctx, 1)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		tk.Release()
		close(done)
	}()
	waitFor(t, time.Second, func() bool { return c.Snapshot().QueueDepth == 1 }, "acquire queued")
	heavy.Release()
	<-done
	light.Release()
}

func TestQueueFullShedsTypedRetryable(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: time.Minute})
	defer c.Close()
	ctx := context.Background()
	tk, err := c.Acquire(ctx, 1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer tk.Release()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // fills the queue
		defer wg.Done()
		tk, err := c.Acquire(ctx, 1)
		if err == nil {
			tk.Release()
		}
	}()
	waitFor(t, time.Second, func() bool { return c.Snapshot().QueueDepth == 1 }, "queue filled")

	_, err = c.Acquire(ctx, 1)
	if err == nil {
		t.Fatalf("queue-full acquire succeeded")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed error %v does not match ErrOverloaded", err)
	}
	if !Retryable(err) {
		t.Fatalf("shed error must be retryable")
	}
	if RetryAfter(err) <= 0 {
		t.Fatalf("shed error carries no retry-after hint: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-full" {
		t.Fatalf("shed error = %v, want queue-full reason", err)
	}
	if got := c.Snapshot().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	tk.Release()
	wg.Wait()
}

func TestDeadlineAwareShedding(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 8})
	defer c.Close()
	tk, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer tk.Release()

	// Teach the gate a long service time so the wait estimate dwarfs the
	// deadline.
	c.mu.Lock()
	c.avgService = time.Second
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Acquire(ctx, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline-doomed acquire = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "deadline" {
		t.Fatalf("reason = %v, want deadline", err)
	}
	// The whole point: the query was refused immediately, not queued to die.
	if waited := time.Since(start); waited > 50*time.Millisecond {
		t.Fatalf("deadline shed took %v; must be immediate", waited)
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 10 * time.Millisecond})
	defer c.Close()
	tk, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer tk.Release()
	_, err = c.Acquire(context.Background(), 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("timed-out acquire = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-timeout" {
		t.Fatalf("reason = %v, want queue-timeout", err)
	}
}

func TestMemoryBudgetGrowAndAbort(t *testing.T) {
	c := New(Config{MemoryBudget: 1000, MemWaitMax: 5 * time.Millisecond})
	defer c.Close()
	ctx := context.Background()

	r1 := c.Reserve(ctx)
	if err := r1.Grow(900); err != nil {
		t.Fatalf("grow within budget: %v", err)
	}
	// Large debt (> budget/8) that does not fit: immediate typed abort.
	r2 := c.Reserve(ctx)
	err := r2.Grow(500)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("large-debt grow = %v, want ErrMemoryBudget", err)
	}
	if Retryable(err) {
		t.Fatalf("memory aborts must not be retryable")
	}
	var me *MemoryError
	if !errors.As(err, &me) || me.Requested != 500 || me.Budget != 1000 {
		t.Fatalf("memory error = %+v", err)
	}
	// Small debt: waits MemWaitMax, then aborts (nobody releases).
	start := time.Now()
	if err := r2.Grow(120); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("small-debt grow = %v, want bounded-wait abort", err)
	} else if time.Since(start) < 4*time.Millisecond {
		t.Fatalf("small debt aborted without waiting")
	}
	// A release unblocks a waiting small debt.
	unblocked := make(chan error, 1)
	r3 := c.Reserve(ctx)
	go func() { unblocked <- r3.Grow(120) }()
	time.Sleep(time.Millisecond)
	r1.Release()
	if err := <-unblocked; err != nil {
		t.Fatalf("small debt after release: %v", err)
	}
	s := c.Snapshot()
	if s.MemReserved != 120 {
		t.Fatalf("MemReserved = %d, want 120", s.MemReserved)
	}
	if s.MemPeak < 900 || s.MemPeak > 1000 {
		t.Fatalf("MemPeak = %d, want within (900, 1000]", s.MemPeak)
	}
	if s.MemAborts != 2 {
		t.Fatalf("MemAborts = %d, want 2", s.MemAborts)
	}
	r3.Release()
	r2.Release()
	if got := c.Snapshot().MemReserved; got != 0 {
		t.Fatalf("MemReserved after releases = %d", got)
	}
}

func TestMemoryBudgetNeverExceededUnderConcurrency(t *testing.T) {
	const budget = 10_000
	c := New(Config{MemoryBudget: budget, MemWaitMax: 2 * time.Millisecond})
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := c.Reserve(context.Background())
				for j := 0; j < 4; j++ {
					if err := r.Grow(budget / 16); err != nil {
						break
					}
				}
				r.Release()
			}
		}()
	}
	wg.Wait()
	if s := c.Snapshot(); s.MemPeak > budget {
		t.Fatalf("MemPeak %d exceeded the %d budget", s.MemPeak, budget)
	}
}

func TestBrownoutLadderRaisesAndClearsWithHysteresis(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{
		MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: time.Minute,
		Brownout: true, RaiseDepth: 2, RaiseWait: time.Hour, // depth-driven only
		RaiseHold: time.Millisecond, Hold: 20 * time.Millisecond,
		Metrics: reg,
	})
	defer c.Close()
	ctx := context.Background()
	tk, err := c.Acquire(ctx, 1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Pile up a queue to push the ladder to its top. Each waiter releases
	// as soon as it is admitted, so the queue drains in a chain once the
	// head ticket goes back.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := c.Acquire(ctx, 1)
			if err != nil {
				t.Errorf("queued acquire %d: %v", i, err)
				return
			}
			tk.Release()
		}(i)
	}
	waitFor(t, 2*time.Second, func() bool { return c.Level() == maxLevel }, "ladder reached max level")
	if c.DegreeCap() != 1 {
		t.Fatalf("DegreeCap at max level = %d, want 1", c.DegreeCap())
	}
	if c.StaleFloor() != 16 {
		t.Fatalf("StaleFloor at max level = %d, want default 16", c.StaleFloor())
	}
	if !c.HedgingDisabled() {
		t.Fatalf("hedging must be off at max level")
	}
	if reg.Gauge(obs.MAdmissionBrownout).Value() != int64(maxLevel) {
		t.Fatalf("brownout gauge = %d, want %d", reg.Gauge(obs.MAdmissionBrownout).Value(), maxLevel)
	}

	// Drain: release the head ticket, let the chain empty the queue, and
	// wait for the ladder to walk back down.
	tk.Release()
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool { return c.Level() == 0 }, "ladder stepped back to 0")
	if c.DegreeCap() != 0 || c.StaleFloor() != 0 || c.HedgingDisabled() {
		t.Fatalf("knobs not restored after drain")
	}
	s := c.Snapshot()
	if s.BrownoutRaises < int64(maxLevel) || s.BrownoutClears < int64(maxLevel) {
		t.Fatalf("raises/clears = %d/%d, want >= %d each", s.BrownoutRaises, s.BrownoutClears, maxLevel)
	}
}

func TestBrownoutStepDownIsGradual(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, Brownout: true, Hold: 15 * time.Millisecond})
	defer c.Close()
	c.ForceLevel(maxLevel)
	c.ForceLevel(-1) // back to automatic, starting from the top
	// Each step down needs a full Hold of calm: the ladder must pass
	// through the intermediate levels, not jump to 0.
	waitFor(t, time.Second, func() bool { return c.Level() == maxLevel-1 }, "first step down")
	if c.Level() != maxLevel-1 {
		t.Fatalf("ladder skipped levels")
	}
	waitFor(t, time.Second, func() bool { return c.Level() == 0 }, "fully restored")
}

func TestForceLevelPinsLadder(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, Brownout: true, Hold: time.Millisecond})
	defer c.Close()
	c.ForceLevel(2)
	time.Sleep(20 * time.Millisecond) // sweeper must not step a pinned ladder down
	if c.Level() != 2 {
		t.Fatalf("forced level drifted to %d", c.Level())
	}
	if c.DegreeCap() != 1 || c.StaleFloor() == 0 || c.HedgingDisabled() {
		t.Fatalf("level-2 knobs wrong: cap=%d floor=%d hedgeOff=%v",
			c.DegreeCap(), c.StaleFloor(), c.HedgingDisabled())
	}
	c.ForceLevel(-1)
	waitFor(t, time.Second, func() bool { return c.Level() == 0 }, "auto control resumed")
}

func TestSlowQueryKiller(t *testing.T) {
	c := New(Config{KillMultiple: 1, ClassBudget: 10 * time.Millisecond})
	defer c.Close()
	ctx, done := c.Track(context.Background(), 1)
	defer done()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatalf("slow query was never killed")
	}
	if !errors.Is(context.Cause(ctx), ErrSlowQuery) {
		t.Fatalf("cancel cause = %v, want ErrSlowQuery", context.Cause(ctx))
	}
	if got := c.Snapshot().SlowKills; got != 1 {
		t.Fatalf("SlowKills = %d, want 1", got)
	}

	// A fast query is never touched and its done() deregisters it.
	ctx2, done2 := c.Track(context.Background(), 1)
	done2()
	time.Sleep(30 * time.Millisecond)
	if errors.Is(context.Cause(ctx2), ErrSlowQuery) {
		t.Fatalf("finished query was killed after deregistering")
	}
	if got := c.Snapshot().SlowKills; got != 1 {
		t.Fatalf("SlowKills after fast query = %d, want still 1", got)
	}
}

func TestErrorCodesRoundTrip(t *testing.T) {
	cases := []error{
		&OverloadError{RetryAfter: 7 * time.Millisecond, Reason: "queue-full"},
		&MemoryError{Requested: 512, Held: 64, Budget: 1024},
		fmt.Errorf("composer: %w", ErrSlowQuery),
	}
	sentinels := []error{ErrOverloaded, ErrMemoryBudget, ErrSlowQuery}
	for i, err := range cases {
		code, ra := Code(err)
		if code == "" {
			t.Fatalf("case %d: no wire code for %v", i, err)
		}
		back := Remote(code, err.Error(), ra)
		if back == nil {
			t.Fatalf("case %d: Remote(%q) = nil", i, code)
		}
		if !errors.Is(back, sentinels[i]) {
			t.Fatalf("case %d: reconstructed %v does not match sentinel", i, back)
		}
		if back.Error() != err.Error() {
			t.Fatalf("case %d: message %q != original %q", i, back.Error(), err.Error())
		}
	}
	if code, _ := Code(errors.New("plain")); code != "" {
		t.Fatalf("plain error got wire code %q", code)
	}
	if Remote("no-such-code", "x", 0) != nil {
		t.Fatalf("unknown code must decode to nil")
	}
	// The retry-after hint survives the round trip.
	back := Remote(CodeOverloaded, "msg", 9*time.Millisecond)
	if RetryAfter(back) != 9*time.Millisecond {
		t.Fatalf("RetryAfter lost in transit: %v", RetryAfter(back))
	}
}

func TestCloseShedsQueuedWaiters(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: time.Minute})
	tk, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background(), 1)
		errs <- err
	}()
	waitFor(t, time.Second, func() bool { return c.Snapshot().QueueDepth == 1 }, "waiter queued")
	c.Close()
	if err := <-errs; err == nil {
		t.Fatalf("queued waiter survived Close")
	}
	tk.Release() // must not panic after Close
	if _, err := c.Acquire(context.Background(), 1); err == nil {
		t.Fatalf("Acquire after Close succeeded")
	}
}

func TestGateUnderConcurrentLoadNeverExceedsCapacity(t *testing.T) {
	const cap = 4
	c := New(Config{MaxConcurrent: cap, MaxQueue: 64, QueueTimeout: time.Minute})
	defer c.Close()
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w := 1 + (g+i)%2
				tk, err := c.Acquire(context.Background(), w)
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				now := inUse.Add(int64(w))
				for {
					p := peak.Load()
					if now <= p || peak.CompareAndSwap(p, now) {
						break
					}
				}
				inUse.Add(int64(-w))
				tk.Release()
			}
		}(g)
	}
	wg.Wait()
	if peak.Load() > cap {
		t.Fatalf("observed %d weight in flight, capacity %d", peak.Load(), cap)
	}
	if got := c.Snapshot().InUse; got != 0 {
		t.Fatalf("InUse after drain = %d", got)
	}
}
