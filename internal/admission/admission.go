// Package admission is the cluster's overload-protection subsystem:
// everything that decides whether a query may run right now, with how
// much memory, at what degree of service, and for how long.
//
// Four cooperating mechanisms share one Controller:
//
//   - Admission gate: a weighted-slot semaphore with a bounded,
//     deadline-aware FIFO wait queue. Heavy queries (aggregations,
//     sorts) take more slots than cheap ones. When the queue is full,
//     or a query's context deadline would expire before its estimated
//     start, the query is shed immediately with a typed, retryable
//     OverloadError carrying a retry-after hint — failing fast beats
//     queueing a query to die (Rödiger et al.: flow control is what
//     keeps a saturated cluster at peak throughput instead of past it).
//
//   - Memory budget: per-query reservations against one cluster-wide
//     byte budget. Gather buffers and composer state charge the query's
//     Reservation as they grow; a small debt waits (bounded) for other
//     queries to release, a large debt aborts with a typed MemoryError,
//     so one giant aggregation can never OOM the process.
//
//   - Brownout ladder: a load controller watching queue depth and the
//     p95 admission wait. Under sustained pressure it raises the
//     degradation level one step at a time — cap intra-node parallelism
//     (level 1), widen the bounded-staleness cache floor so stale hits
//     absorb reads (level 2), disable hedged sub-queries (level 3) —
//     and steps back down with hysteresis once the queue drains. The
//     knobs are pulled by the engine per decision point, so recovery
//     needs no callback fan-out: when the level drops, the next query
//     simply sees the restored defaults.
//
//   - Slow-query killer: a sweep that cancels (via context cause) any
//     tracked query exceeding KillMultiple × its weight × ClassBudget
//     of wall clock, relying on the engines' cooperative per-morsel ctx
//     checks to stop the work.
//
// Every decision is observable: apuama_admission_* counters, the wait
// histogram and the brownout-level / reserved-bytes gauges land in the
// obs registry, and the engine annotates query spans with the queue
// wait and brownout level.
//
// All Controller methods are safe on a nil receiver (admission
// disabled), mirroring the nil-handle convention of internal/obs.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"apuama/internal/obs"
)

// Config configures a Controller. The zero value disables every
// mechanism; each one enables independently.
type Config struct {
	// MaxConcurrent is the admission gate's weighted slot capacity
	// (0 disables the gate). A query's weight — its crude cost class,
	// 1..4 — counts against it.
	MaxConcurrent int
	// MaxQueue bounds the wait queue; arrivals beyond it are shed
	// immediately (default 4 × MaxConcurrent).
	MaxQueue int
	// QueueTimeout bounds how long one query waits for a slot before it
	// is shed (default 1s).
	QueueTimeout time.Duration

	// MemoryBudget is the cluster-wide composition-memory budget in
	// bytes (0 disables accounting). Queries reserve against it as their
	// gather buffers and composer state grow.
	MemoryBudget int64
	// MemWaitMax bounds how long a small memory debt waits for other
	// queries to release before aborting (default 50ms).
	MemWaitMax time.Duration

	// Brownout enables the graceful-degradation ladder.
	Brownout bool
	// RaiseDepth is the queue depth that counts as overload pressure
	// (default max(2, MaxQueue/2)).
	RaiseDepth int
	// RaiseWait is the p95 admission wait that counts as overload
	// pressure (default 20ms).
	RaiseWait time.Duration
	// RaiseHold is the minimum time between level raises, so one burst
	// climbs the ladder a step at a time (default 5ms).
	RaiseHold time.Duration
	// Hold is how long the gate must stay calm (empty queue, low p95)
	// before the ladder steps one level down — the hysteresis that stops
	// the knobs flapping at the overload boundary (default 250ms).
	Hold time.Duration
	// BrownoutStale is the MaxStaleEpochs floor applied to cache lookups
	// at level >= 2, letting bounded-stale hits absorb read traffic
	// (default 16).
	BrownoutStale int64

	// BatchWindow enables the MQO batching window (0 disables): the
	// first arrival after a quiet period holds for up to this long so
	// the burst behind it lands inside one shared-scan pass. The window
	// releases early at BatchDepth arrivals, and switches itself off at
	// brownout level >= 1 — under overload, added latency is the wrong
	// trade.
	BatchWindow time.Duration
	// BatchDepth releases an open batching window as soon as this many
	// queries have joined it (default 8).
	BatchDepth int

	// KillMultiple × weight × ClassBudget is the wall-clock bound past
	// which the slow-query killer cancels a tracked query (0 disables).
	KillMultiple float64
	// ClassBudget is the per-weight-unit wall-clock budget the killer
	// multiplies (default 1s).
	ClassBudget time.Duration

	// Metrics, when set, mirrors every admission decision into the
	// registry under the apuama_admission_* names.
	Metrics *obs.Registry
}

// Enabled reports whether any mechanism is configured.
func (c Config) Enabled() bool {
	return c.MaxConcurrent > 0 || c.MemoryBudget > 0 || c.Brownout ||
		c.KillMultiple > 0 || c.BatchWindow > 0
}

// withDefaults resolves the defaultable knobs (the package's equivalent
// of core.Options.withDefaults).
func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.MemWaitMax <= 0 {
		c.MemWaitMax = 50 * time.Millisecond
	}
	if c.RaiseDepth <= 0 {
		c.RaiseDepth = c.MaxQueue / 2
		if c.RaiseDepth < 2 {
			c.RaiseDepth = 2
		}
	}
	if c.RaiseWait <= 0 {
		c.RaiseWait = 20 * time.Millisecond
	}
	if c.RaiseHold <= 0 {
		c.RaiseHold = 5 * time.Millisecond
	}
	if c.Hold <= 0 {
		c.Hold = 250 * time.Millisecond
	}
	if c.BrownoutStale <= 0 {
		c.BrownoutStale = 16
	}
	if c.ClassBudget <= 0 {
		c.ClassBudget = time.Second
	}
	if c.BatchDepth <= 0 {
		c.BatchDepth = 8
	}
	return c
}

// maxLevel is the top of the brownout ladder: 1 caps intra-node
// parallelism, 2 adds the stale floor, 3 adds hedging off.
const maxLevel = 3

// sweepInterval paces the background sweeper (slow-query kills and
// brownout decay when no traffic triggers an evaluation).
const sweepInterval = 5 * time.Millisecond

// smallDebtDiv splits memory debts: a Grow of at most Budget/smallDebtDiv
// waits (bounded) for releases; anything larger aborts immediately.
const smallDebtDiv = 8

// waiter is one queued Acquire.
type waiter struct {
	weight int
	ready  chan struct{} // closed on admit (or close-time shed)
	err    error         // set before ready closes when the gate shut down
}

// waitSample is one admission-wait observation, timestamped so the
// brownout controller's p95 decays as samples age out of its window.
type waitSample struct {
	wait time.Duration
	at   time.Time
}

// Controller is the overload-protection subsystem. Build with New;
// a nil *Controller is valid and disables everything.
type Controller struct {
	cfg Config

	mu         sync.Mutex
	closed     bool
	inUse      int // admitted weight currently holding slots
	queue      []*waiter
	avgService time.Duration // EWMA of admitted-query service time
	samples    [128]waitSample
	sampleN    int
	level      int
	forced     int // >= 0 pins the brownout level (tests/drills); -1 = auto
	lastChange time.Time

	admitted, queuedTotal, shed int64
	raises, clears              int64
	slowKills, memAborts        int64

	bmu          sync.Mutex
	batchOpen    bool
	batchJoined  int           // arrivals in the open window
	batchRelease chan struct{} // closed when the window releases
	batchTimer   *time.Timer
	batched      int64 // queries that held in a window
	batchWindows int64 // windows opened

	memMu   sync.Mutex
	memUsed int64
	memPeak int64
	memWake chan struct{} // closed-and-replaced on each release (broadcast)

	runMu   sync.Mutex
	runSeq  int64
	running map[int64]*trackedQuery

	stop chan struct{}
	wg   sync.WaitGroup

	reg          *obs.Registry
	mAdmitted    *obs.Counter
	mQueued      *obs.Counter
	mMemAborts   *obs.Counter
	mSlowKills   *obs.Counter
	mWait        *obs.Histogram
	mLevel       *obs.Gauge
	mMemReserved *obs.Gauge
	mBatched     *obs.Counter
	mBatchWins   *obs.Counter
}

// trackedQuery is one running query as the slow-query killer sees it.
type trackedQuery struct {
	start  time.Time
	budget time.Duration
	cancel context.CancelCauseFunc
}

// New builds a Controller; a zero (disabled) config returns nil, which
// every method treats as "admission off".
func New(cfg Config) *Controller {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:     cfg,
		forced:  -1,
		running: map[int64]*trackedQuery{},
		stop:    make(chan struct{}),

		reg:          cfg.Metrics,
		mAdmitted:    cfg.Metrics.Counter(obs.MAdmissionAdmitted),
		mQueued:      cfg.Metrics.Counter(obs.MAdmissionQueued),
		mMemAborts:   cfg.Metrics.Counter(obs.MAdmissionMemAborts),
		mSlowKills:   cfg.Metrics.Counter(obs.MAdmissionSlowKills),
		mWait:        cfg.Metrics.Histogram(obs.MAdmissionWait),
		mLevel:       cfg.Metrics.Gauge(obs.MAdmissionBrownout),
		mMemReserved: cfg.Metrics.Gauge(obs.MAdmissionMemReserved),
		mBatched:     cfg.Metrics.Counter(obs.MAdmissionBatched),
		mBatchWins:   cfg.Metrics.Counter(obs.MAdmissionBatchWins),
	}
	if cfg.KillMultiple > 0 || cfg.Brownout {
		c.wg.Add(1)
		go c.sweeper()
	}
	return c
}

// Close stops the background sweeper and sheds every queued waiter.
// Safe to call more than once and on nil.
func (c *Controller) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, w := range c.queue {
		w.err = errClosed
		close(w.ready)
	}
	c.queue = nil
	c.mu.Unlock()
	c.bmu.Lock()
	c.releaseBatchLocked()
	c.bmu.Unlock()
	close(c.stop)
	c.wg.Wait()
}

var errClosed = errors.New("admission: controller closed")

// Ticket is one admitted query's slot claim. Release it exactly once
// when the query finishes (success or failure). A nil Ticket (gate
// disabled) is a valid no-op.
type Ticket struct {
	c        *Controller
	weight   int
	start    time.Time
	wait     time.Duration
	released bool
}

// Wait reports how long the query queued before admission.
func (t *Ticket) Wait() time.Duration {
	if t == nil {
		return 0
	}
	return t.wait
}

// Release frees the slots and feeds the gate's service-time estimate.
func (t *Ticket) Release() {
	if t == nil || t.released {
		return
	}
	t.released = true
	c := t.c
	now := time.Now()
	c.mu.Lock()
	c.inUse -= t.weight
	c.noteServiceLocked(now.Sub(t.start))
	c.wakeLocked()
	c.evaluateLocked(now)
	c.mu.Unlock()
}

// Acquire claims weight slots, queueing (bounded, deadline-aware) when
// the gate is full. It returns a nil Ticket immediately when the gate is
// disabled. Shed queries return a typed *OverloadError wrapping
// ErrOverloaded; they did no work and are safe to retry after the
// error's RetryAfter hint.
func (c *Controller) Acquire(ctx context.Context, weight int) (*Ticket, error) {
	if c == nil || c.cfg.MaxConcurrent <= 0 {
		return nil, nil
	}
	if weight < 1 {
		weight = 1
	}
	if weight > c.cfg.MaxConcurrent {
		weight = c.cfg.MaxConcurrent
	}
	now := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClosed
	}
	// Fast path: slots free and nobody queued ahead (FIFO fairness — a
	// light query must not overtake a heavy one already waiting).
	if len(c.queue) == 0 && c.inUse+weight <= c.cfg.MaxConcurrent {
		c.inUse += weight
		c.admitted++
		c.noteWaitLocked(0, now)
		c.evaluateLocked(now)
		c.mu.Unlock()
		c.mAdmitted.Inc()
		return &Ticket{c: c, weight: weight, start: now}, nil
	}
	est := c.estimateWaitLocked(weight)
	if len(c.queue) >= c.cfg.MaxQueue {
		c.shedLocked(now)
		c.mu.Unlock()
		c.countShed("queue-full")
		return nil, &OverloadError{RetryAfter: est, Reason: "queue-full"}
	}
	// Deadline-aware shedding: a query whose deadline would expire
	// before its estimated start is refused now, not queued to die.
	if dl, ok := ctx.Deadline(); ok && now.Add(est).After(dl) {
		c.shedLocked(now)
		c.mu.Unlock()
		c.countShed("deadline")
		return nil, &OverloadError{RetryAfter: est, Reason: "deadline"}
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	c.queue = append(c.queue, w)
	c.queuedTotal++
	c.evaluateLocked(now)
	c.mu.Unlock()
	c.mQueued.Inc()

	timer := time.NewTimer(c.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		admitAt := time.Now()
		wait := admitAt.Sub(now)
		c.mu.Lock()
		c.noteWaitLocked(wait, admitAt)
		c.evaluateLocked(admitAt)
		c.mu.Unlock()
		return &Ticket{c: c, weight: weight, start: admitAt, wait: wait}, nil
	case <-ctx.Done():
		if c.abandon(w) {
			c.countShed("deadline")
			return nil, fmt.Errorf("%w while queued: %v",
				&OverloadError{RetryAfter: est, Reason: "deadline"}, ctx.Err())
		}
		// Admitted concurrently with the cancellation: give the slot back.
		<-w.ready
		c.giveBack(w)
		return nil, ctx.Err()
	case <-timer.C:
		if c.abandon(w) {
			c.countShed("queue-timeout")
			return nil, &OverloadError{RetryAfter: est, Reason: "queue-timeout"}
		}
		// Admitted concurrently with the timeout: give the slot back. To
		// the caller this is still the bounded wait running out, so it
		// sheds typed and retryable, not with a bare context error.
		<-w.ready
		c.giveBack(w)
		c.mu.Lock()
		c.shedLocked(time.Now())
		c.mu.Unlock()
		c.countShed("queue-timeout")
		return nil, &OverloadError{RetryAfter: est, Reason: "queue-timeout"}
	}
}

// abandon removes a still-queued waiter; false means it was already
// admitted (its ready channel is closed or about to be).
func (c *Controller) abandon(w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			c.shedLocked(time.Now())
			return true
		}
	}
	return false
}

// giveBack returns the slots of a waiter that was admitted after its
// caller had already given up (no service-time sample: it ran nothing).
func (c *Controller) giveBack(w *waiter) {
	if w.err != nil {
		return // close-time shed: no slots were granted
	}
	c.mu.Lock()
	c.inUse -= w.weight
	c.wakeLocked()
	c.evaluateLocked(time.Now())
	c.mu.Unlock()
}

// shedLocked bumps the shed counter and re-evaluates the ladder (a shed
// is pressure evidence).
func (c *Controller) shedLocked(now time.Time) { c.shed++; c.evaluateLocked(now) }

// countShed resolves the labeled shed counter off the hot path (the
// label set is bounded by the three shed reasons).
func (c *Controller) countShed(reason string) {
	c.reg.Counter(obs.Labeled(obs.MAdmissionShed, "reason", reason)).Inc()
}

// wakeLocked admits queued waiters in FIFO order while slots fit.
func (c *Controller) wakeLocked() {
	for len(c.queue) > 0 && c.inUse+c.queue[0].weight <= c.cfg.MaxConcurrent {
		w := c.queue[0]
		c.queue = c.queue[1:]
		c.inUse += w.weight
		c.admitted++
		c.mAdmitted.Inc()
		close(w.ready)
	}
}

// estimateWaitLocked is the retry-after / deadline-shed estimate: the
// EWMA service time scaled by the weight already admitted or queued
// ahead, over the gate's capacity.
func (c *Controller) estimateWaitLocked(weight int) time.Duration {
	avg := c.avgService
	if avg <= 0 {
		avg = 2 * time.Millisecond
	}
	pending := c.inUse + weight
	for _, w := range c.queue {
		pending += w.weight
	}
	est := time.Duration(float64(avg) * float64(pending) / float64(c.cfg.MaxConcurrent))
	if est < time.Millisecond {
		est = time.Millisecond
	}
	return est
}

// noteServiceLocked feeds the service-time EWMA (α = 1/4).
func (c *Controller) noteServiceLocked(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if c.avgService == 0 {
		c.avgService = d
		return
	}
	c.avgService += (d - c.avgService) / 4
}

// noteWaitLocked records one admission wait for the p95 window and the
// exported histogram.
func (c *Controller) noteWaitLocked(d time.Duration, now time.Time) {
	c.samples[c.sampleN%len(c.samples)] = waitSample{wait: d, at: now}
	c.sampleN++
	c.mWait.Observe(d)
}

// waitP95Locked computes the p95 admission wait over the recent sample
// window (4 × Hold), so pressure evidence decays once traffic calms.
func (c *Controller) waitP95Locked(now time.Time) time.Duration {
	cutoff := now.Add(-4 * c.cfg.Hold)
	var ws []time.Duration
	for i := range c.samples {
		s := c.samples[i]
		if !s.at.IsZero() && s.at.After(cutoff) {
			ws = append(ws, s.wait)
		}
	}
	if len(ws) == 0 {
		return 0
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	idx := len(ws) * 95 / 100
	if idx >= len(ws) {
		idx = len(ws) - 1
	}
	return ws[idx]
}

// evaluateLocked runs the brownout ladder's transition rule: raise one
// level per RaiseHold while pressure holds (queue depth or p95 wait
// above threshold), step one level down only after Hold of calm — the
// hysteresis that keeps the knobs from flapping.
func (c *Controller) evaluateLocked(now time.Time) {
	if !c.cfg.Brownout || c.forced >= 0 || c.closed {
		return
	}
	depth := len(c.queue)
	p95 := c.waitP95Locked(now)
	hot := depth >= c.cfg.RaiseDepth || (p95 > 0 && p95 >= c.cfg.RaiseWait)
	switch {
	case hot && c.level < maxLevel && now.Sub(c.lastChange) >= c.cfg.RaiseHold:
		c.setLevelLocked(c.level+1, now)
		c.raises++
	case !hot && c.level > 0 && depth == 0 && now.Sub(c.lastChange) >= c.cfg.Hold:
		c.setLevelLocked(c.level-1, now)
		c.clears++
	}
}

func (c *Controller) setLevelLocked(n int, now time.Time) {
	c.level = n
	c.lastChange = now
	c.mLevel.Set(int64(n))
}

// ForceLevel pins the brownout ladder at level n (determinism tests and
// operator drills); ForceLevel(-1) returns it to automatic control.
func (c *Controller) ForceLevel(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if n > maxLevel {
		n = maxLevel
	}
	c.forced = n
	if n >= 0 {
		c.setLevelLocked(n, time.Now())
	}
	c.mu.Unlock()
}

// Level reports the current brownout level (0 = full service).
func (c *Controller) Level() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// DegreeCap is the brownout cap on intra-node morsel parallelism
// (0 = uncapped). The engine consults it per sub-query, so the cap both
// takes effect and restores without any state pushed into the nodes.
func (c *Controller) DegreeCap() int {
	if c.Level() >= 1 {
		return 1
	}
	return 0
}

// StaleFloor is the brownout floor on the cache's MaxStaleEpochs bound
// (0 = no floor): at level >= 2 bounded-stale cache hits absorb read
// traffic that would otherwise queue.
func (c *Controller) StaleFloor() int64 {
	if c != nil && c.Level() >= 2 {
		return c.cfg.BrownoutStale
	}
	return 0
}

// HedgingDisabled reports whether the ladder has switched speculative
// sub-query hedging off (level >= 3) — duplicated work is the first
// thing to go when capacity is the bottleneck.
func (c *Controller) HedgingDisabled() bool { return c.Level() >= 3 }

// BatchGate holds a query in the MQO batching window so concurrent
// arrivals overlap inside one shared-scan pass. The first arrival after
// a quiet period opens a window and everyone holds until it releases —
// at BatchWindow elapsed, at BatchDepth arrivals, or when the caller's
// context ends (the query proceeds either way; the gate only delays,
// it never refuses). Disabled on nil controllers, when BatchWindow is
// unset, and at brownout level >= 1: under overload the queue itself
// provides the overlap, and deliberate latency would feed the ladder's
// own pressure signal.
func (c *Controller) BatchGate(ctx context.Context) {
	if c == nil || c.cfg.BatchWindow <= 0 || c.Level() >= 1 {
		return
	}
	c.bmu.Lock()
	if c.closedBatchLocked() {
		c.bmu.Unlock()
		return
	}
	if !c.batchOpen {
		c.batchOpen = true
		c.batchJoined = 0
		rel := make(chan struct{})
		c.batchRelease = rel
		c.batchWindows++
		c.mBatchWins.Inc()
		c.batchTimer = time.AfterFunc(c.cfg.BatchWindow, func() {
			c.bmu.Lock()
			if c.batchRelease == rel {
				c.releaseBatchLocked()
			}
			c.bmu.Unlock()
		})
	}
	c.batchJoined++
	c.batched++
	c.mBatched.Inc()
	rel := c.batchRelease
	if c.batchJoined >= c.cfg.BatchDepth {
		c.releaseBatchLocked()
		c.bmu.Unlock()
		return
	}
	c.bmu.Unlock()
	select {
	case <-rel:
	case <-ctx.Done():
	}
}

// closedBatchLocked samples the controller's closed flag (held under
// c.mu) without ordering bmu inside mu: a racy read is fine here — the
// only consequence of a stale false is one last, timer-bounded window.
func (c *Controller) closedBatchLocked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// releaseBatchLocked (bmu held) releases the open window's holders.
func (c *Controller) releaseBatchLocked() {
	if !c.batchOpen {
		return
	}
	c.batchOpen = false
	if c.batchTimer != nil {
		c.batchTimer.Stop()
		c.batchTimer = nil
	}
	close(c.batchRelease)
	c.batchRelease = nil
}

// sweeper drives the clocks traffic doesn't: slow-query kills and
// brownout decay after the last release (without it, a drained gate
// would stay browned out until the next query).
func (c *Controller) sweeper() {
	defer c.wg.Done()
	t := time.NewTicker(sweepInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		if c.cfg.KillMultiple > 0 {
			c.sweep(time.Now())
		}
		c.mu.Lock()
		c.evaluateLocked(time.Now())
		c.mu.Unlock()
	}
}

// Track registers a query with the slow-query killer: the returned
// context is cancelled with ErrSlowQuery as its cause once the query
// exceeds KillMultiple × weight × ClassBudget of wall clock. The
// returned stop function must be called when the query ends. With the
// killer disabled both are pass-throughs.
func (c *Controller) Track(ctx context.Context, weight int) (context.Context, func()) {
	if c == nil || c.cfg.KillMultiple <= 0 {
		return ctx, func() {}
	}
	if weight < 1 {
		weight = 1
	}
	ctx, cancel := context.WithCancelCause(ctx)
	budget := time.Duration(c.cfg.KillMultiple * float64(weight) * float64(c.cfg.ClassBudget))
	c.runMu.Lock()
	c.runSeq++
	id := c.runSeq
	c.running[id] = &trackedQuery{start: time.Now(), budget: budget, cancel: cancel}
	c.runMu.Unlock()
	return ctx, func() {
		c.runMu.Lock()
		delete(c.running, id)
		c.runMu.Unlock()
		cancel(nil)
	}
}

// sweep cancels every tracked query past its wall-clock bound.
func (c *Controller) sweep(now time.Time) {
	var killed int64
	c.runMu.Lock()
	for id, q := range c.running {
		if elapsed := now.Sub(q.start); elapsed > q.budget {
			q.cancel(fmt.Errorf("%w: ran %v against a %v wall-clock bound",
				ErrSlowQuery, elapsed.Round(time.Millisecond), q.budget))
			delete(c.running, id)
			killed++
		}
	}
	c.runMu.Unlock()
	if killed > 0 {
		c.mu.Lock()
		c.slowKills += killed
		c.mu.Unlock()
		c.mSlowKills.Add(killed)
	}
}

// Stats is a snapshot of the subsystem's counters.
type Stats struct {
	Admitted       int64 // queries granted slots (fast path or after queueing)
	Queued         int64 // queries that had to wait for a slot
	Shed           int64 // queries refused with ErrOverloaded
	MemAborts      int64 // reservations aborted with ErrMemoryBudget
	SlowKills      int64 // queries cancelled by the slow-query killer
	BrownoutLevel  int   // current ladder level (0 = full service)
	BrownoutRaises int64 // level raises since start
	BrownoutClears int64 // level step-downs since start
	MemReserved    int64 // bytes currently reserved
	MemPeak        int64 // high-water mark of reserved bytes
	InUse          int   // admitted weight currently holding slots
	QueueDepth     int   // waiters currently queued
	Batched        int64 // queries held in an MQO batching window
	BatchWindows   int64 // batching windows opened
}

// Snapshot returns the subsystem's counters (zero value on nil).
func (c *Controller) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	s := Stats{
		Admitted:       c.admitted,
		Queued:         c.queuedTotal,
		Shed:           c.shed,
		MemAborts:      c.memAborts,
		SlowKills:      c.slowKills,
		BrownoutLevel:  c.level,
		BrownoutRaises: c.raises,
		BrownoutClears: c.clears,
		InUse:          c.inUse,
		QueueDepth:     len(c.queue),
	}
	c.mu.Unlock()
	c.memMu.Lock()
	s.MemReserved = c.memUsed
	s.MemPeak = c.memPeak
	c.memMu.Unlock()
	c.bmu.Lock()
	s.Batched = c.batched
	s.BatchWindows = c.batchWindows
	c.bmu.Unlock()
	return s
}
