package admission

import (
	"context"
	"sync"
	"testing"
	"time"

	"apuama/internal/obs"
)

// TestBatchGateReleasesAtDepth: once BatchDepth arrivals have joined,
// the window releases immediately — a full batch never waits out the
// clock.
func TestBatchGateReleasesAtDepth(t *testing.T) {
	c := New(Config{BatchWindow: time.Hour, BatchDepth: 3})
	if c == nil {
		t.Fatal("BatchWindow alone must enable the controller")
	}
	defer c.Close()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.BatchGate(context.Background())
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("a full batch never released before the window expired")
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("depth release took %v, want well under the 1h window", el)
	}
	st := c.Snapshot()
	if st.Batched != 3 || st.BatchWindows != 1 {
		t.Fatalf("stats = %d batched / %d windows, want 3 / 1", st.Batched, st.BatchWindows)
	}
}

// TestBatchGateReleasesAtWindow: a lone arrival holds only until the
// window expires, then proceeds; the next arrival opens a new window.
func TestBatchGateReleasesAtWindow(t *testing.T) {
	c := New(Config{BatchWindow: 5 * time.Millisecond, BatchDepth: 100})
	defer c.Close()
	c.BatchGate(context.Background())
	c.BatchGate(context.Background())
	st := c.Snapshot()
	if st.Batched != 2 || st.BatchWindows != 2 {
		t.Fatalf("stats = %d batched / %d windows, want 2 / 2", st.Batched, st.BatchWindows)
	}
}

// TestBatchGateContextCancel: a held arrival whose context ends
// proceeds without waiting for the window.
func TestBatchGateContextCancel(t *testing.T) {
	c := New(Config{BatchWindow: time.Hour, BatchDepth: 100})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	released := make(chan struct{})
	go func() {
		c.BatchGate(ctx)
		close(released)
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case <-released:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled holder never released")
	}
}

// TestBatchGateOffUnderBrownout: at brownout level >= 1 the gate is a
// pass-through — deliberate batching latency would feed the pressure
// signal it is reacting to.
func TestBatchGateOffUnderBrownout(t *testing.T) {
	c := New(Config{BatchWindow: time.Hour, BatchDepth: 100, Brownout: true})
	defer c.Close()
	c.ForceLevel(1)
	start := time.Now()
	c.BatchGate(context.Background())
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("browned-out gate held for %v, want immediate", el)
	}
	if st := c.Snapshot(); st.Batched != 0 {
		t.Fatalf("browned-out gate recorded %d batched arrivals, want 0", st.Batched)
	}
}

// TestBatchGateCloseReleases: Close releases every held arrival and
// later calls pass through.
func TestBatchGateCloseReleases(t *testing.T) {
	c := New(Config{BatchWindow: time.Hour, BatchDepth: 100})
	released := make(chan struct{})
	go func() {
		c.BatchGate(context.Background())
		close(released)
	}()
	waitFor(t, 10*time.Second, func() bool { return c.Snapshot().Batched == 1 }, "holder never joined")
	c.Close()
	select {
	case <-released:
	case <-time.After(30 * time.Second):
		t.Fatal("Close never released the held arrival")
	}
	c.BatchGate(context.Background()) // must not hang on a closed controller
}

// TestBatchGateMetricsMirrored: the obs counters track the snapshot.
func TestBatchGateMetricsMirrored(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{BatchWindow: time.Hour, BatchDepth: 2, Metrics: reg})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.BatchGate(context.Background()) }()
	}
	wg.Wait()
	st := c.Snapshot()
	if got := reg.Counter(obs.MAdmissionBatched).Value(); got != st.Batched {
		t.Fatalf("mirror %s = %d, snapshot %d", obs.MAdmissionBatched, got, st.Batched)
	}
	if got := reg.Counter(obs.MAdmissionBatchWins).Value(); got != st.BatchWindows {
		t.Fatalf("mirror %s = %d, snapshot %d", obs.MAdmissionBatchWins, got, st.BatchWindows)
	}
}
