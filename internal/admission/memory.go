package admission

import (
	"context"
	"time"
)

// Reservation is one query's claim against the cluster-wide memory
// budget. The engine opens one per admitted query and every allocation
// the query's composition pipeline retains — gather-channel buffers,
// memdb load buffers, fold-table groups — charges it with Grow. The
// accounting is high-watermark style: Grow accumulates, Release frees
// the whole claim at query end (a query's composition memory is only
// truly reclaimed when the query finishes, so per-batch releases would
// just understate pressure).
//
// A nil *Reservation (accounting disabled) is a valid no-op, so sinks
// charge unconditionally.
type Reservation struct {
	c    *Controller
	ctx  context.Context // the query context; bounds small-debt waits
	held int64
}

// Reserve opens a reservation for one query; the context bounds any
// small-debt waits inside Grow. Returns nil (a no-op reservation) when
// memory accounting is disabled.
func (c *Controller) Reserve(ctx context.Context) *Reservation {
	if c == nil || c.cfg.MemoryBudget <= 0 {
		return nil
	}
	return &Reservation{c: c, ctx: ctx}
}

// Grow charges n more bytes to the reservation. A debt that fits the
// budget is granted immediately; a small debt (at most Budget/8) that
// does not fit waits — bounded by MemWaitMax and the query context —
// for other queries to release; a large debt aborts at once with a
// typed *MemoryError wrapping ErrMemoryBudget. The bounded wait is what
// makes the budget deadlock-free: two queries growing against each
// other resolve by one aborting, never by both waiting forever.
func (r *Reservation) Grow(n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	c := r.c
	budget := c.cfg.MemoryBudget
	deadline := time.Now().Add(c.cfg.MemWaitMax)
	for {
		c.memMu.Lock()
		if c.memUsed+n <= budget {
			c.memUsed += n
			r.held += n
			if c.memUsed > c.memPeak {
				c.memPeak = c.memUsed
			}
			c.mMemReserved.Set(c.memUsed)
			c.memMu.Unlock()
			return nil
		}
		if n > budget/smallDebtDiv {
			c.memMu.Unlock()
			return c.memAbort(n, r.held, budget)
		}
		wake := c.memWake
		if wake == nil {
			wake = make(chan struct{})
			c.memWake = wake
		}
		c.memMu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return c.memAbort(n, r.held, budget)
		}
		t := time.NewTimer(wait)
		select {
		case <-wake:
			t.Stop() // a release freed something: re-check
		case <-r.ctx.Done():
			t.Stop()
			return r.ctx.Err()
		case <-t.C:
			return c.memAbort(n, r.held, budget)
		}
	}
}

// Held reports the bytes currently charged to this reservation.
func (r *Reservation) Held() int64 {
	if r == nil {
		return 0
	}
	return r.held
}

// Release frees the whole claim and wakes every blocked Grow. Safe to
// call more than once and on nil.
func (r *Reservation) Release() {
	if r == nil || r.held == 0 {
		return
	}
	c := r.c
	c.memMu.Lock()
	c.memUsed -= r.held
	r.held = 0
	if c.memWake != nil {
		close(c.memWake)
		c.memWake = nil
	}
	c.mMemReserved.Set(c.memUsed)
	c.memMu.Unlock()
}

// memAbort counts a budget abort and builds its typed error.
func (c *Controller) memAbort(req, held, budget int64) error {
	c.mu.Lock()
	c.memAborts++
	c.mu.Unlock()
	c.mMemAborts.Inc()
	return &MemoryError{Requested: req, Held: held, Budget: budget}
}
