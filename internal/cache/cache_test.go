package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apuama/internal/engine"
	"apuama/internal/obs"
	"apuama/internal/sql"
	"apuama/internal/sqltypes"
)

func res(n int) *engine.Result {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i))}
	}
	return &engine.Result{Cols: []string{"v"}, Rows: rows}
}

func TestLookupFillEpoch(t *testing.T) {
	c := New(Config{Entries: 8}, nil)
	fp := sql.Fingerprint(1)
	if _, _, ok := c.Lookup(fp, 5, 0); ok {
		t.Fatal("empty cache hit")
	}
	want := res(3)
	c.Fill(fp, 5, want)
	got, at, ok := c.Lookup(fp, 5, 0)
	if !ok || got != want || at != 5 {
		t.Fatalf("fresh hit: got %v at %d ok=%v", got, at, ok)
	}
	// A bumped epoch (committed write) misses with no staleness budget…
	if _, _, ok := c.Lookup(fp, 6, 0); ok {
		t.Fatal("hit across epoch bump with maxStale=0")
	}
	// …and hits within the budget, reporting the older epoch.
	got, at, ok = c.Lookup(fp, 6, 1)
	if !ok || got != want || at != 5 {
		t.Fatalf("stale hit: got %v at %d ok=%v", got, at, ok)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.StaleHits != 1 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEntryCapEvicts(t *testing.T) {
	// Entries below the shard count floor to one entry per shard; fill
	// far past the cap and check occupancy respects it.
	c := New(Config{Entries: 16, DisablePartial: true}, nil)
	for i := 0; i < 500; i++ {
		c.Fill(sql.Fingerprint(i), 1, res(1))
	}
	s := c.Stats()
	if s.Entries > 16 {
		t.Fatalf("entries %d exceed cap 16", s.Entries)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestByteCapEvicts(t *testing.T) {
	c := New(Config{Entries: 1 << 20, MaxBytes: 64 * 1024, DisablePartial: true}, nil)
	for i := 0; i < 200; i++ {
		c.Fill(sql.Fingerprint(i), 1, res(100)) // ~6.4KB each
	}
	if b := c.Stats().Bytes; b > 64*1024 {
		t.Fatalf("resident bytes %d exceed cap", b)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestTTLExpires(t *testing.T) {
	c := New(Config{Entries: 8, TTL: time.Millisecond}, nil)
	c.Fill(1, 1, res(1))
	time.Sleep(5 * time.Millisecond)
	if _, _, ok := c.Lookup(1, 1, 0); ok {
		t.Fatal("hit past TTL")
	}
	if c.Stats().Expired == 0 {
		t.Fatal("no expiry counted")
	}
}

func TestPartialExactEpochOnly(t *testing.T) {
	c := New(Config{Entries: 8}, nil)
	rows := []sqltypes.Row{{sqltypes.NewInt(7)}}
	c.FillPartial(9, 0, 100, 3, rows)
	if got, ok := c.LookupPartial(9, 0, 100, 3); !ok || len(got) != 1 {
		t.Fatalf("exact-epoch partial lookup: ok=%v rows=%v", ok, got)
	}
	// Different range or epoch must miss — partials never serve stale.
	if _, ok := c.LookupPartial(9, 0, 100, 4); ok {
		t.Fatal("partial hit across epochs")
	}
	if _, ok := c.LookupPartial(9, 100, 200, 3); ok {
		t.Fatal("partial hit across ranges")
	}
	s := c.Stats()
	if s.PartialHits != 1 || s.PartialMiss != 2 || s.PartialFill != 1 || s.PartialEnts != 1 {
		t.Fatalf("partial stats = %+v", s)
	}
}

func TestDisablePartial(t *testing.T) {
	c := New(Config{Entries: 8, DisablePartial: true}, nil)
	c.FillPartial(9, 0, 100, 3, []sqltypes.Row{{sqltypes.NewInt(7)}})
	if _, ok := c.LookupPartial(9, 0, 100, 3); ok {
		t.Fatal("partial layer served while disabled")
	}
	if c.PartialEnabled() {
		t.Fatal("PartialEnabled on a partial-disabled cache")
	}
}

func TestSingleflightSharesOneExecution(t *testing.T) {
	c := New(Config{Entries: 8}, nil)
	var execs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), 1, 1, func() (*engine.Result, error) {
			execs.Add(1)
			close(started)
			<-release
			return res(1), nil
		})
	}()
	<-started
	var wg sync.WaitGroup
	results := make([]*engine.Result, 8)
	sharedN := atomic.Int64{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, shared, err := c.Do(context.Background(), 1, 1, func() (*engine.Result, error) {
				execs.Add(1)
				return res(1), nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			if shared {
				sharedN.Add(1)
			}
			results[i] = r
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the followers join the flight
	close(release)
	wg.Wait()
	<-leaderDone
	if n := execs.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1", n)
	}
	if n := sharedN.Load(); n != 8 {
		t.Fatalf("shared %d of 8 followers", n)
	}
	for i, r := range results {
		if r == nil || len(r.Rows) != 1 {
			t.Fatalf("follower %d result %v", i, r)
		}
	}
	if c.Stats().Shares != 8 {
		t.Fatalf("share counter = %d", c.Stats().Shares)
	}
}

func TestSingleflightFollowerContext(t *testing.T) {
	c := New(Config{Entries: 8}, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), 1, 1, func() (*engine.Result, error) {
		close(started)
		<-release
		return res(1), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := c.Do(ctx, 1, 1, func() (*engine.Result, error) { return res(1), nil })
	if !errors.Is(err, context.Canceled) || shared {
		t.Fatalf("cancelled follower: shared=%v err=%v", shared, err)
	}
}

func TestSingleflightErrorPropagates(t *testing.T) {
	c := New(Config{Entries: 8}, nil)
	wantErr := errors.New("boom")
	_, _, err := c.Do(context.Background(), 1, 1, func() (*engine.Result, error) { return nil, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// The flight entry is gone: the next Do runs fresh.
	r, shared, err := c.Do(context.Background(), 1, 1, func() (*engine.Result, error) { return res(2), nil })
	if err != nil || shared || len(r.Rows) != 2 {
		t.Fatalf("after error: %v %v %v", r, shared, err)
	}
}

func TestNilCacheInert(t *testing.T) {
	var c *Cache
	if c := New(Config{}, nil); c != nil {
		t.Fatal("disabled config built a cache")
	}
	c.Fill(1, 1, res(1))
	if _, _, ok := c.Lookup(1, 1, 0); ok {
		t.Fatal("nil cache hit")
	}
	if _, ok := c.LookupPartial(1, 0, 1, 1); ok {
		t.Fatal("nil partial hit")
	}
	r, shared, err := c.Do(context.Background(), 1, 1, func() (*engine.Result, error) { return res(1), nil })
	if err != nil || shared || r == nil {
		t.Fatal("nil cache Do must run the function directly")
	}
	c.DropResults()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats = %+v", s)
	}
}

func TestDropResults(t *testing.T) {
	c := New(Config{Entries: 8}, nil)
	c.Fill(1, 1, res(1))
	c.FillPartial(2, 0, 10, 1, []sqltypes.Row{{sqltypes.NewInt(1)}})
	c.DropResults()
	s := c.Stats()
	if s.Entries != 0 {
		t.Fatalf("results survived DropResults: %+v", s)
	}
	if s.PartialEnts != 1 {
		t.Fatalf("DropResults should keep partials: %+v", s)
	}
	if _, ok := c.LookupPartial(2, 0, 10, 1); !ok {
		t.Fatal("partial entry lost")
	}
	c.DropAll()
	s = c.Stats()
	if s.Entries != 0 || s.PartialEnts != 0 || s.Bytes != 0 {
		t.Fatalf("after DropAll: %+v", s)
	}
}

func TestControlContext(t *testing.T) {
	ctx := context.Background()
	if ctl := ControlFrom(ctx); ctl != (Control{}) {
		t.Fatalf("default control = %+v", ctl)
	}
	want := Control{NoCache: true, MaxStaleEpochs: 3}
	if got := ControlFrom(WithControl(ctx, want)); got != want {
		t.Fatalf("control round-trip = %+v", got)
	}
}

func TestStaleBound(t *testing.T) {
	c := New(Config{Entries: 8, MaxStaleEpochs: 2}, nil)
	if b := c.StaleBound(Control{}); b != 2 {
		t.Fatalf("default bound %d", b)
	}
	if b := c.StaleBound(Control{MaxStaleEpochs: 7}); b != 7 {
		t.Fatalf("override bound %d", b)
	}
	if b := c.StaleBound(Control{MaxStaleEpochs: 100000}); b != maxStaleScan {
		t.Fatalf("unclamped bound %d", b)
	}
	var nilC *Cache
	if b := nilC.StaleBound(Control{MaxStaleEpochs: 7}); b != 0 {
		t.Fatalf("nil bound %d", b)
	}
}

func TestMetricsMirrored(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Entries: 16}, reg)
	c.Fill(1, 1, res(2))
	c.FillPartial(2, 0, 10, 1, []sqltypes.Row{{sqltypes.NewInt(1)}})
	if v := reg.Gauge(obs.MCacheEntries).Value(); v != 1 {
		t.Fatalf("%s gauge = %d", obs.MCacheEntries, v)
	}
	if v := reg.Gauge(obs.MCachePartialEntries).Value(); v != 1 {
		t.Fatalf("%s gauge = %d", obs.MCachePartialEntries, v)
	}
	if v := reg.Gauge(obs.MCacheBytes).Value(); v <= 0 {
		t.Fatalf("%s gauge = %d", obs.MCacheBytes, v)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	// Hammer every entry point from many goroutines; the race detector
	// (make tier1) is the assertion.
	c := New(Config{Entries: 32, MaxBytes: 1 << 16, TTL: time.Millisecond}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				fp := sql.Fingerprint(i % 40)
				epoch := int64(i % 5)
				switch i % 5 {
				case 0:
					c.Fill(fp, epoch, res(i%7))
				case 1:
					c.Lookup(fp, epoch, 2)
				case 2:
					c.FillPartial(fp, 0, 100, epoch, res(i%3).Rows)
				case 3:
					c.LookupPartial(fp, 0, 100, epoch)
				default:
					c.Do(context.Background(), fp, epoch, func() (*engine.Result, error) {
						return res(1), nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	c.Stats()
}

func TestDoPanicReleasesFollowers(t *testing.T) {
	c := New(Config{Entries: 8}, nil)
	_, _, err := c.Do(context.Background(), 1, 1, func() (*engine.Result, error) {
		panic("kaboom")
	})
	if err == nil {
		t.Fatal("want an error from a panicking leader")
	}
	// The flight table must be clean afterwards.
	r, _, err := c.Do(context.Background(), 1, 1, func() (*engine.Result, error) { return res(1), nil })
	if err != nil || r == nil {
		t.Fatalf("after panic: %v %v", r, err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{Entries: 1024}, nil)
	for i := 0; i < 100; i++ {
		c.Fill(sql.Fingerprint(i), 1, res(10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(sql.Fingerprint(i%100), 1, 0)
	}
}

func BenchmarkLookupParallel(b *testing.B) {
	c := New(Config{Entries: 1024}, nil)
	for i := 0; i < 100; i++ {
		c.Fill(sql.Fingerprint(i), 1, res(10))
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Lookup(sql.Fingerprint(i%100), 1, 0)
			i++
		}
	})
}
