package cache

import (
	"context"
	"errors"
	"fmt"

	"apuama/internal/engine"
	"apuama/internal/sql"
	"apuama/internal/sqltypes"
)

// flightKey identifies one in-flight execution: identical queries at
// the same head epoch share a single plan execution. Queries arriving
// after a write (different epoch) run separately — the leader's result
// would be stale for them.
type flightKey struct {
	fp    sql.Fingerprint
	epoch int64
}

type flightCall struct {
	done chan struct{}
	res  *engine.Result
	err  error
}

// Do executes fn once per (fingerprint, epoch) across concurrent
// callers. The first caller (the leader) runs fn; followers block until
// the leader finishes and receive its result with shared=true, or give
// up when their own context ends (the leader keeps running — its result
// still fills the cache for everyone else).
//
// The leader removes its flight entry before publishing the result, and
// fn is expected to fill the cache before returning: a caller that
// missed both the cache and the flight table re-runs fn, which begins
// with its own cache lookup (double-checked caching) and finds the fill.
func (c *Cache) Do(ctx context.Context, fp sql.Fingerprint, epoch int64, fn func() (*engine.Result, error)) (res *engine.Result, shared bool, err error) {
	if c == nil {
		res, err = fn()
		return res, false, err
	}
	key := flightKey{fp: fp, epoch: epoch}
	c.fmu.Lock()
	if call, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		select {
		case <-call.done:
			c.shares.Add(1)
			return call.res, true, call.err
		case <-ctx.Done():
			c.fCancels.Add(1)
			c.mFCancels.Inc()
			return nil, false, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	c.flights[key] = call
	c.fmu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			call.err = fmt.Errorf("cache: leader panicked: %v", r)
			err = call.err
		}
		c.fmu.Lock()
		delete(c.flights, key)
		c.fmu.Unlock()
		close(call.done)
	}()
	call.res, call.err = fn()
	return call.res, false, call.err
}

// Partition-level singleflight: MQO's second sharing layer. Where Do
// collapses whole statements, these collapse one partition's decomposed
// sub-query across *different* parent statements — the key is the
// canonical sub-plan fingerprint plus the VPA range and epoch, exactly
// the partial-cache key, so any two queries whose decomposition lands on
// the same (sub-plan, range, snapshot) execute that partition once.
//
// The protocol is split so the engine's gather loop stays in charge:
// JoinPartialFlight is called per cold partition; the first caller
// becomes the leader (leader=true, wait=nil) and owes a matching
// FinishPartialFlight (success) or AbortPartialFlight (any other exit).
// Followers get leader=false and a wait function that blocks for the
// leader's rows; an aborted flight surfaces ErrPartialFlightAborted and
// the follower re-executes its partition itself — sharing is an
// optimization, never a correctness dependency.

// ErrPartialFlightAborted is returned by a follower's wait when the
// leader gave up without publishing rows (failure, cancellation, or
// engine shutdown). The follower should fall back to executing the
// partition directly.
var ErrPartialFlightAborted = errors.New("cache: partial flight aborted by leader")

type pflightKey struct {
	fp     sql.Fingerprint
	lo, hi int64
	epoch  int64
}

type pflightCall struct {
	done chan struct{}
	rows []sqltypes.Row
	err  error
}

// JoinPartialFlight registers interest in one partition's sub-query.
// On a nil or flight-less cache every caller is its own leader (with a
// nil wait function and no Finish/Abort obligation — both no-op).
func (c *Cache) JoinPartialFlight(fp sql.Fingerprint, lo, hi, epoch int64) (leader bool, wait func(context.Context) ([]sqltypes.Row, error)) {
	if c == nil {
		return true, nil
	}
	key := pflightKey{fp: fp, lo: lo, hi: hi, epoch: epoch}
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if call, ok := c.pflights[key]; ok {
		c.pShares.Add(1)
		c.mPShares.Inc()
		return false, func(ctx context.Context) ([]sqltypes.Row, error) {
			select {
			case <-call.done:
				return call.rows, call.err
			case <-ctx.Done():
				c.fCancels.Add(1)
				c.mFCancels.Inc()
				return nil, ctx.Err()
			}
		}
	}
	c.pflights[key] = &pflightCall{done: make(chan struct{})}
	return true, nil
}

// FinishPartialFlight publishes a leader's partition rows to its
// followers and retires the flight. The rows are shared and must be
// treated as immutable by every consumer.
func (c *Cache) FinishPartialFlight(fp sql.Fingerprint, lo, hi, epoch int64, rows []sqltypes.Row) {
	c.settlePartialFlight(fp, lo, hi, epoch, rows, nil)
}

// AbortPartialFlight retires a leader's flight without a result;
// waiting followers receive ErrPartialFlightAborted and re-execute.
// Safe to call for an already-finished flight (no-op), so leaders can
// defer it unconditionally.
func (c *Cache) AbortPartialFlight(fp sql.Fingerprint, lo, hi, epoch int64) {
	c.settlePartialFlight(fp, lo, hi, epoch, nil, ErrPartialFlightAborted)
}

func (c *Cache) settlePartialFlight(fp sql.Fingerprint, lo, hi, epoch int64, rows []sqltypes.Row, err error) {
	if c == nil {
		return
	}
	key := pflightKey{fp: fp, lo: lo, hi: hi, epoch: epoch}
	c.fmu.Lock()
	call, ok := c.pflights[key]
	if ok {
		delete(c.pflights, key)
	}
	c.fmu.Unlock()
	if !ok {
		return
	}
	call.rows, call.err = rows, err
	close(call.done)
}
