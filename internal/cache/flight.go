package cache

import (
	"context"
	"fmt"

	"apuama/internal/engine"
	"apuama/internal/sql"
)

// flightKey identifies one in-flight execution: identical queries at
// the same head epoch share a single plan execution. Queries arriving
// after a write (different epoch) run separately — the leader's result
// would be stale for them.
type flightKey struct {
	fp    sql.Fingerprint
	epoch int64
}

type flightCall struct {
	done chan struct{}
	res  *engine.Result
	err  error
}

// Do executes fn once per (fingerprint, epoch) across concurrent
// callers. The first caller (the leader) runs fn; followers block until
// the leader finishes and receive its result with shared=true, or give
// up when their own context ends (the leader keeps running — its result
// still fills the cache for everyone else).
//
// The leader removes its flight entry before publishing the result, and
// fn is expected to fill the cache before returning: a caller that
// missed both the cache and the flight table re-runs fn, which begins
// with its own cache lookup (double-checked caching) and finds the fill.
func (c *Cache) Do(ctx context.Context, fp sql.Fingerprint, epoch int64, fn func() (*engine.Result, error)) (res *engine.Result, shared bool, err error) {
	if c == nil {
		res, err = fn()
		return res, false, err
	}
	key := flightKey{fp: fp, epoch: epoch}
	c.fmu.Lock()
	if call, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		select {
		case <-call.done:
			c.shares.Add(1)
			return call.res, true, call.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	c.flights[key] = call
	c.fmu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			call.err = fmt.Errorf("cache: leader panicked: %v", r)
			err = call.err
		}
		c.fmu.Lock()
		delete(c.flights, key)
		c.fmu.Unlock()
		close(call.done)
	}()
	call.res, call.err = fn()
	return call.res, false, call.err
}
