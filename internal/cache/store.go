package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"apuama/internal/obs"
)

// ckey identifies one cached value: the query (or sub-query)
// fingerprint, the VPA range for partials (zero for composed results),
// and the epoch the value was computed at.
type ckey struct {
	fp     uint64
	lo, hi int64
	epoch  int64
}

// storeMetrics are the registry mirrors a store maintains (nil-safe).
type storeMetrics struct {
	evictions *obs.Counter
	expired   *obs.Counter
	bytes     *obs.Gauge
	entries   *obs.Gauge
}

// store is a sharded LRU with entry/byte caps and TTL. Sharding keeps
// lock hold times short under concurrent identical-query storms; the
// caps apply per shard (total/shards) so eviction needs no global lock.
type store struct {
	shards     [storeShards]shard
	maxEntries int // per shard
	maxBytes   int64
	ttl        time.Duration
	m          storeMetrics

	nEntries atomic.Int64
	nBytes   atomic.Int64
	nEvicted atomic.Int64
	nExpired atomic.Int64
}

const storeShards = 16

type shard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	m     map[ckey]*list.Element
	bytes int64
}

type entry struct {
	key      ckey
	val      any
	size     int64
	deadline time.Time // zero = no TTL
}

func newStore(maxEntries int, maxBytes int64, ttl time.Duration, m storeMetrics) *store {
	perShard := maxEntries / storeShards
	if perShard < 1 {
		perShard = 1
	}
	s := &store{maxEntries: perShard, ttl: ttl, m: m}
	if maxBytes > 0 {
		s.maxBytes = maxBytes / storeShards
		if s.maxBytes < 1 {
			s.maxBytes = 1
		}
	}
	for i := range s.shards {
		s.shards[i].ll = list.New()
		s.shards[i].m = map[ckey]*list.Element{}
	}
	return s
}

func (s *store) shardFor(k ckey) *shard {
	// fp is already a 64-bit hash; fold the range and epoch in so one
	// hot fingerprint's epochs spread across shards.
	h := k.fp ^ uint64(k.epoch)*0x9e3779b97f4a7c15 ^ uint64(k.lo)<<17 ^ uint64(k.hi)<<31
	return &s.shards[h%storeShards]
}

func (s *store) get(k ckey) (any, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[k]
	if !ok {
		return nil, false
	}
	en := el.Value.(*entry)
	if !en.deadline.IsZero() && time.Now().After(en.deadline) {
		s.removeLocked(sh, el)
		s.nExpired.Add(1)
		s.m.expired.Inc()
		s.publish()
		return nil, false
	}
	sh.ll.MoveToFront(el)
	return en.val, true
}

func (s *store) put(k ckey, val any, size int64) {
	var deadline time.Time
	if s.ttl > 0 {
		deadline = time.Now().Add(s.ttl)
	}
	sh := s.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.m[k]; ok {
		en := el.Value.(*entry)
		s.nBytes.Add(size - en.size)
		sh.bytes += size - en.size
		en.val, en.size, en.deadline = val, size, deadline
		sh.ll.MoveToFront(el)
	} else {
		el := sh.ll.PushFront(&entry{key: k, val: val, size: size, deadline: deadline})
		sh.m[k] = el
		s.nEntries.Add(1)
		s.nBytes.Add(size)
		sh.bytes += size
	}
	s.evictLocked(sh)
	sh.mu.Unlock()
	s.publish()
}

// evictLocked trims the shard to its entry cap and its share of the
// byte cap, oldest first.
func (s *store) evictLocked(sh *shard) {
	for sh.ll.Len() > s.maxEntries || (s.maxBytes > 0 && sh.bytes > s.maxBytes && sh.ll.Len() > 0) {
		el := sh.ll.Back()
		if el == nil {
			return
		}
		s.removeLocked(sh, el)
		s.nEvicted.Add(1)
		s.m.evictions.Inc()
	}
}

func (s *store) removeLocked(sh *shard, el *list.Element) {
	en := el.Value.(*entry)
	sh.ll.Remove(el)
	delete(sh.m, en.key)
	s.nEntries.Add(-1)
	s.nBytes.Add(-en.size)
	sh.bytes -= en.size
}

func (s *store) clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for el := sh.ll.Back(); el != nil; el = sh.ll.Back() {
			s.removeLocked(sh, el)
		}
		sh.mu.Unlock()
	}
	s.publish()
}

// publish mirrors occupancy into the registry gauges.
func (s *store) publish() {
	s.m.entries.Set(s.nEntries.Load())
	s.m.bytes.Set(s.nBytes.Load())
}

func (s *store) len() int64      { return s.nEntries.Load() }
func (s *store) bytes() int64    { return s.nBytes.Load() }
func (s *store) evicted() int64  { return s.nEvicted.Load() }
func (s *store) expiredN() int64 { return s.nExpired.Load() }
