// Package cache is the versioned result cache and in-flight query
// sharing layer ("Result caching & work sharing" in DESIGN.md).
//
// The consistency barrier already maintains per-node transaction
// counters so SVP sub-queries dispatch only when every replica is at
// the same state; the converged counter is exactly the version a result
// cache needs. Entries are keyed by (query fingerprint, epoch), where
// the fingerprint is the canonical-form hash from internal/sql and the
// epoch is the cluster transaction counter the result was computed at.
// Any committed write bumps every replica's counter, so invalidation is
// implicit: the next lookup happens at a higher epoch and misses. A
// staleness knob (MaxStaleEpochs) lets reads accept results up to k
// writes behind the head — the cache-side analogue of the engine's
// relaxed-freshness replication policy.
//
// Three cooperating layers:
//
//   - the result cache: a bounded, sharded LRU of final composed
//     results (entry/byte caps + TTL);
//   - in-flight sharing: N concurrent identical queries at the same
//     epoch execute the plan once and fan the result out (Do);
//   - the partial cache: per-partition sub-query results keyed by
//     (sub-query fingerprint, VPA range, epoch), so a warm partition
//     skips re-execution and only missing ranges dispatch.
//
// Cached results are shared between callers and must be treated as
// immutable — the engine's composers build fresh result objects and
// never mutate returned ones.
package cache

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"apuama/internal/engine"
	"apuama/internal/obs"
	"apuama/internal/sql"
	"apuama/internal/sqltypes"
)

// Config sizes the cache. The zero value disables caching entirely.
type Config struct {
	// Entries caps cached composed results (0 disables the cache).
	// The partial cache, when enabled, holds up to 4× this many
	// partition entries (one query contributes n of them).
	Entries int
	// MaxBytes caps approximate resident bytes across both layers
	// (0 = no byte cap). Split evenly when the partial cache is on.
	MaxBytes int64
	// TTL expires entries by age even without writes (0 = no expiry).
	TTL time.Duration
	// MaxStaleEpochs lets lookups accept results up to this many
	// committed writes behind the head epoch (0 = exact-epoch only).
	// Per-request control bits can tighten or relax it (Control).
	MaxStaleEpochs int64
	// DisablePartial turns off the partition-level partial cache.
	DisablePartial bool
}

// Enabled reports whether this configuration caches anything.
func (c Config) Enabled() bool { return c.Entries > 0 }

// maxStaleScan bounds the per-lookup epoch walk no matter what a
// request asks for: each stale epoch probed is one more map lookup.
const maxStaleScan = 64

// Control is the per-request cache policy, carried in the context
// (WithControl) from the wire protocol / driver down to the engine.
type Control struct {
	// NoCache bypasses lookup, fill, and in-flight sharing.
	NoCache bool
	// MaxStaleEpochs, when > 0, overrides the configured staleness
	// bound for this request only.
	MaxStaleEpochs int64
}

type controlKey struct{}

// WithControl attaches per-request cache control bits to the context.
func WithControl(ctx context.Context, ctl Control) context.Context {
	return context.WithValue(ctx, controlKey{}, ctl)
}

// ControlFrom extracts the request's control bits (zero value if none).
func ControlFrom(ctx context.Context) Control {
	ctl, _ := ctx.Value(controlKey{}).(Control)
	return ctl
}

// Stats is a point-in-time view of cache activity, exposed through
// Cluster.CacheStats and the daemon's /debug/cache endpoint.
type Stats struct {
	Hits          int64 // full-result lookups served from cache
	Misses        int64 // full-result lookups that fell through
	StaleHits     int64 // hits served from behind the head epoch
	Shares        int64 // queries that rode another's in-flight execution
	Fills         int64 // composed results inserted
	Entries       int64 // resident composed results
	Bytes         int64 // approximate resident bytes, both layers
	Evictions     int64 // entries evicted by the entry/byte caps
	Expired       int64 // entries dropped at their TTL
	FlightCancels int64 // singleflight followers cancelled mid-wait
	PartialHits   int64 // partitions served from the partial cache
	PartialMiss   int64 // partition probes that dispatched for real
	PartialFill   int64 // partition results inserted
	PartialShares int64 // partitions joined onto an in-flight leader
	PartialEnts   int64 // resident partition entries
}

// Cache is the process-wide query cache: composed results, in-flight
// sharing, and the partition-level partial layer. All methods are safe
// for concurrent use. A nil *Cache is inert: lookups miss, fills no-op,
// Do runs the function directly.
type Cache struct {
	cfg      Config
	results  *store
	partials *store // nil when Config.DisablePartial

	fmu      sync.Mutex
	flights  map[flightKey]*flightCall
	pflights map[pflightKey]*pflightCall

	mFills    *obs.Counter // registry mirror of fills (nil-safe)
	mFCancels *obs.Counter // registry mirror of flightCancels
	mPFills   *obs.Counter // registry mirror of pFills
	mPShares  *obs.Counter // registry mirror of pShares

	hits      atomic.Int64
	misses    atomic.Int64
	staleHits atomic.Int64
	shares    atomic.Int64
	fills     atomic.Int64
	fCancels  atomic.Int64
	pHits     atomic.Int64
	pMiss     atomic.Int64
	pFills    atomic.Int64
	pShares   atomic.Int64
}

// New builds a cache sized by cfg, mirroring occupancy and eviction
// metrics into reg (nil-safe). Returns nil when cfg disables caching —
// callers may use the nil cache directly.
func New(cfg Config, reg *obs.Registry) *Cache {
	if !cfg.Enabled() {
		return nil
	}
	resBytes := cfg.MaxBytes
	var partials *store
	if !cfg.DisablePartial {
		if cfg.MaxBytes > 0 {
			resBytes = cfg.MaxBytes / 2
		}
		partials = newStore(cfg.Entries*4, resBytes, cfg.TTL, storeMetrics{
			evictions: reg.Counter(obs.MCacheEvictions),
			expired:   reg.Counter(obs.MCacheExpired),
			bytes:     reg.Gauge(obs.MCachePartialBytes),
			entries:   reg.Gauge(obs.MCachePartialEntries),
		})
	}
	results := newStore(cfg.Entries, resBytes, cfg.TTL, storeMetrics{
		evictions: reg.Counter(obs.MCacheEvictions),
		expired:   reg.Counter(obs.MCacheExpired),
		bytes:     reg.Gauge(obs.MCacheBytes),
		entries:   reg.Gauge(obs.MCacheEntries),
	})
	return &Cache{
		cfg:       cfg,
		results:   results,
		partials:  partials,
		flights:   map[flightKey]*flightCall{},
		pflights:  map[pflightKey]*pflightCall{},
		mFills:    reg.Counter(obs.MCacheFills),
		mFCancels: reg.Counter(obs.MCacheFlightCancels),
		mPFills:   reg.Counter(obs.MCachePartialFills),
		mPShares:  reg.Counter(obs.MCachePartialShares),
	}
}

// Config returns the cache's sizing configuration (zero for nil).
func (c *Cache) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// PartialEnabled reports whether the partition-level layer is active.
func (c *Cache) PartialEnabled() bool { return c != nil && c.partials != nil }

// StaleBound resolves the effective staleness bound for a request:
// the per-request override when set, the configured default otherwise,
// clamped to the scan bound.
func (c *Cache) StaleBound(ctl Control) int64 {
	if c == nil {
		return 0
	}
	bound := c.cfg.MaxStaleEpochs
	if ctl.MaxStaleEpochs > 0 {
		bound = ctl.MaxStaleEpochs
	}
	if bound > maxStaleScan {
		bound = maxStaleScan
	}
	return bound
}

// Lookup returns the cached composed result for fp at epoch, walking
// back up to maxStale older epochs. The returned epoch is the one the
// hit was computed at (== epoch for a fresh hit).
func (c *Cache) Lookup(fp sql.Fingerprint, epoch, maxStale int64) (*engine.Result, int64, bool) {
	res, at, ok := c.Peek(fp, epoch, maxStale)
	if c == nil {
		return res, at, ok
	}
	if ok {
		c.hits.Add(1)
		if at < epoch {
			c.staleHits.Add(1)
		}
	} else {
		c.misses.Add(1)
	}
	return res, at, ok
}

// Peek is Lookup without touching the hit/miss counters. The
// singleflight double-check uses it so one logical miss is not counted
// twice.
func (c *Cache) Peek(fp sql.Fingerprint, epoch, maxStale int64) (*engine.Result, int64, bool) {
	if c == nil {
		return nil, 0, false
	}
	if maxStale > maxStaleScan {
		maxStale = maxStaleScan
	}
	for d := int64(0); d <= maxStale && epoch-d >= 0; d++ {
		if v, ok := c.results.get(ckey{fp: uint64(fp), epoch: epoch - d}); ok {
			return v.(*engine.Result), epoch - d, true
		}
	}
	return nil, 0, false
}

// Fill inserts a composed result computed at epoch.
func (c *Cache) Fill(fp sql.Fingerprint, epoch int64, res *engine.Result) {
	if c == nil || res == nil {
		return
	}
	c.fills.Add(1)
	c.mFills.Inc()
	c.results.put(ckey{fp: uint64(fp), epoch: epoch}, res, resultSize(res))
}

// LookupPartial returns the cached rows of one partition's sub-query at
// exactly the given epoch. Partials never serve stale: a composed
// result must come from partitions of one snapshot, so mixing epochs
// across partitions is never sound.
func (c *Cache) LookupPartial(fp sql.Fingerprint, lo, hi, epoch int64) ([]sqltypes.Row, bool) {
	if c == nil || c.partials == nil {
		return nil, false
	}
	if v, ok := c.partials.get(ckey{fp: uint64(fp), lo: lo, hi: hi, epoch: epoch}); ok {
		c.pHits.Add(1)
		return v.([]sqltypes.Row), true
	}
	c.pMiss.Add(1)
	return nil, false
}

// FillPartial inserts one partition's sub-query rows at epoch.
func (c *Cache) FillPartial(fp sql.Fingerprint, lo, hi, epoch int64, rows []sqltypes.Row) {
	if c == nil || c.partials == nil {
		return
	}
	c.pFills.Add(1)
	c.mPFills.Inc()
	c.partials.put(ckey{fp: uint64(fp), lo: lo, hi: hi, epoch: epoch}, rows, rowsSize(rows))
}

// DropResults empties the composed-result layer only: the next lookup
// misses and re-executes, but warm partitions still come out of the
// partial layer. The flight table is untouched — in-flight executions
// finish normally.
func (c *Cache) DropResults() {
	if c == nil {
		return
	}
	c.results.clear()
}

// DropAll empties both layers (the operational escape hatch).
func (c *Cache) DropAll() {
	if c == nil {
		return
	}
	c.results.clear()
	if c.partials != nil {
		c.partials.clear()
	}
}

// Stats snapshots cache activity. Safe on a nil cache (all zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		StaleHits:     c.staleHits.Load(),
		Shares:        c.shares.Load(),
		Fills:         c.fills.Load(),
		FlightCancels: c.fCancels.Load(),
		PartialHits:   c.pHits.Load(),
		PartialMiss:   c.pMiss.Load(),
		PartialFill:   c.pFills.Load(),
		PartialShares: c.pShares.Load(),
	}
	s.Entries = c.results.len()
	s.Bytes = c.results.bytes()
	s.Evictions = c.results.evicted()
	s.Expired = c.results.expiredN()
	if c.partials != nil {
		s.PartialEnts = c.partials.len()
		s.Bytes += c.partials.bytes()
		s.Evictions += c.partials.evicted()
		s.Expired += c.partials.expiredN()
	}
	return s
}

// Size estimation: fixed per-value overhead (kind + int64 + float64 +
// string header) plus string payloads — approximate by design; the
// byte cap bounds memory order-of-magnitude, not exactly.
const (
	perValueBytes = 40
	perRowBytes   = 24
)

func rowsSize(rows []sqltypes.Row) int64 {
	sz := int64(perRowBytes)
	for _, r := range rows {
		sz += perRowBytes + int64(len(r))*perValueBytes
		for _, v := range r {
			sz += int64(len(v.S))
		}
	}
	return sz
}

func resultSize(res *engine.Result) int64 {
	sz := rowsSize(res.Rows)
	for _, col := range res.Cols {
		sz += int64(len(col)) + 16
	}
	return sz
}
