package apuama_test

// One benchmark per figure in the paper's evaluation, plus component
// benches. The figure benches run a reduced sweep (Quick configuration:
// SF 0.002, nodes 1-2-4) and report the headline shape metrics the paper
// claims — e.g. the 4-node speedup per query for Fig. 2 — via
// b.ReportMetric. The full-scale regeneration lives in
// cmd/apuama-bench; see EXPERIMENTS.md for recorded runs.

import (
	"fmt"
	"testing"

	apuama "apuama"
	"apuama/internal/experiments"
	"apuama/internal/tpch"
)

// benchConfig is the reduced sweep used by the figure benches.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Repeats = 3
	return cfg
}

// BenchmarkFig2Speedup regenerates the Fig. 2 sweep once per iteration
// and reports each query's 4-node speedup (the paper's headline: ~2x at
// 2 nodes for every query; super-linear for the selective ones at 4).
func BenchmarkFig2Speedup(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 { // report from the final run
			last := len(fig.Nodes) - 1
			for c, name := range fig.Series {
				if fig.Values[last][c] > 0 {
					b.ReportMetric(fig.Values[0][c]/fig.Values[last][c],
						fmt.Sprintf("%s-speedup@%dn", name, fig.Nodes[last]))
				}
			}
		}
	}
}

// BenchmarkFig3aThroughput reports read-only throughput (queries/min) at
// the largest swept cluster size against the linear reference.
func BenchmarkFig3aThroughput(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig3a(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := len(fig.Nodes) - 1
			b.ReportMetric(fig.Values[last][0], "qpm")
			if fig.Values[last][1] > 0 {
				b.ReportMetric(fig.Values[last][0]/fig.Values[last][1], "x-of-linear")
			}
		}
	}
}

// BenchmarkFig3bScaleup reports the scale-up ratio: ideal is 1.0 (flat),
// below 1.0 beats linear scale-up as the paper observed.
func BenchmarkFig3bScaleup(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig3b(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := len(fig.Nodes) - 1
			if fig.Values[0][0] > 0 {
				b.ReportMetric(fig.Values[last][0]/fig.Values[0][0], "time-vs-flat-ideal")
			}
		}
	}
}

// BenchmarkFig4aMixed reports mixed-workload read throughput with a
// concurrent refresh stream.
func BenchmarkFig4aMixed(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4a(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := len(fig.Nodes) - 1
			b.ReportMetric(fig.Values[last][0], "qpm")
		}
	}
}

// BenchmarkFig4bMixedScaleup reports the mixed-workload scale-up ratio.
func BenchmarkFig4bMixedScaleup(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4b(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := len(fig.Nodes) - 1
			if fig.Values[0][0] > 0 {
				b.ReportMetric(fig.Values[last][0]/fig.Values[0][0], "time-vs-flat-ideal")
			}
		}
	}
}

// --- component benches (no simulated sleeping: raw harness speed) ---

func benchCluster(b *testing.B, nodes int, disableSVP bool) *apuama.Cluster {
	b.Helper()
	cost := apuama.DefaultCost()
	cost.RealSleep = false
	c, err := apuama.Open(apuama.Config{Nodes: nodes, Cost: cost, DisableSVP: disableSVP})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.LoadTPCH(0.002, 1); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkSVPQuery measures one SVP execution end to end (rewrite,
// barrier, fan-out, composition) without simulated latencies.
func BenchmarkSVPQuery(b *testing.B) {
	for _, qn := range []int{1, 6} {
		for _, n := range []int{1, 4} {
			b.Run(fmt.Sprintf("Q%d/nodes=%d", qn, n), func(b *testing.B) {
				c := benchCluster(b, n, false)
				q := tpch.MustQuery(qn)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPassThroughQuery measures the baseline path: the middleware
// forwarding an OLAP query to a single node.
func BenchmarkPassThroughQuery(b *testing.B) {
	c := benchCluster(b, 4, true)
	q := tpch.MustQuery(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOLTPPointQuery measures the inter-query path the paper keeps
// untouched: a selective point read through the load balancer.
func BenchmarkOLTPPointQuery(b *testing.B) {
	c := benchCluster(b, 4, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("select o_totalprice from orders where o_orderkey = %d", i%1000+1)
		if _, err := c.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicatedWrite measures a write broadcast across replicas.
func BenchmarkReplicatedWrite(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			c := benchCluster(b, n, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stmt := fmt.Sprintf(
					"insert into orders values (%d, 1, 'O', 1.0, date '1997-01-01', '1-URGENT', 'c', 0, 'x')",
					1_000_000+i)
				if _, err := c.Exec(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefreshStream measures the paper's RF1+RF2 update transaction
// mix end to end.
func BenchmarkRefreshStream(b *testing.B) {
	c := benchCluster(b, 2, false)
	g := tpch.Generator{SF: 0.002, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh keys each iteration: shift the stream's base.
		stmts := tpch.NewRefreshStream(g, 3).Statements()
		b.StartTimer()
		for _, s := range stmts {
			if _, err := c.Exec(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
