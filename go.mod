module apuama

go 1.22
