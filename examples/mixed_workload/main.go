// Mixed workload demo (the paper's Fig. 4 scenario): concurrent OLAP
// query sequences and a TPC-H refresh stream (RF1 inserts, RF2 deletes)
// against the same cluster, with replica consistency maintained by
// Apuama's blocking mechanism throughout.
//
//	go run ./examples/mixed_workload
package main

import (
	"fmt"
	"log"
	"time"

	apuama "apuama"
	"apuama/internal/experiments"
	"apuama/internal/tpch"
	"apuama/internal/workload"
)

func main() {
	const (
		nodes       = 4
		sf          = 0.005
		readStreams = 3
		refreshOrds = 30
	)
	cost := experiments.ExperimentCost()

	c, err := apuama.Open(apuama.Config{Nodes: nodes, Cost: cost})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading TPC-H (SF %g) ...\n", sf)
	if err := c.LoadTPCH(sf, 1); err != nil {
		log.Fatal(err)
	}
	before, err := c.Query("select count(*) from lineitem")
	if err != nil {
		log.Fatal(err)
	}

	updates := tpch.NewRefreshStream(tpch.Generator{SF: sf, Seed: 1}, refreshOrds).Statements()
	fmt.Printf("running %d read sequences + %d refresh transactions concurrently ...\n",
		readStreams, len(updates))
	rep, err := workload.RunMixed(c, readStreams, 1, updates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted in %v\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("  reads:   %d queries, %.1f queries/min\n", rep.Queries, rep.QPM())
	fmt.Printf("  updates: %d transactions in %v\n", rep.Updates, rep.UpdateElapsed.Round(time.Millisecond))

	st := c.Stats()
	fmt.Printf("  apuama:  %d SVP queries, %d pass-through, barrier time %v\n",
		st.SVPQueries, st.PassThrough, st.BarrierWaits.Round(time.Millisecond))

	// RF2 removed everything RF1 inserted: the database is back to its
	// initial state on every replica.
	after, err := c.Query("select count(*) from lineitem")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  lineitem rows before/after refresh cycle: %s / %s\n",
		before.Rows[0][0].String(), after.Rows[0][0].String())
	if before.Rows[0][0].I != after.Rows[0][0].I {
		log.Fatal("refresh cycle did not restore the row count")
	}
	fmt.Println("replica state verified consistent.")
}
