// Failover demo: a node crashes under a live OLAP + update workload; the
// cluster routes around it (intra-query failover repartitions SVP work
// onto survivors, writes commit on the remaining replicas), and the node
// later rejoins through the recovery log, exactly caught up.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	apuama "apuama"
	"apuama/internal/tpch"
)

func main() {
	c, err := apuama.Open(apuama.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.LoadTPCH(0.002, 1); err != nil {
		log.Fatal(err)
	}

	count := func(label string) int64 {
		res, err := c.Query("select count(*) from orders")
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s orders=%d\n", label, res.Rows[0][0].I)
		return res.Rows[0][0].I
	}
	count("healthy cluster")

	fmt.Println("\n-- killing node 2 --")
	if err := c.KillNode(2); err != nil {
		log.Fatal(err)
	}
	// OLAP keeps working: survivors repartition the key domain.
	count("after crash (3 survivors)")

	// Writes commit on the survivors while node 2 is down.
	for k := 1; k <= 10; k++ {
		if _, err := c.Exec(fmt.Sprintf("delete from orders where o_orderkey = %d", k)); err != nil {
			log.Fatal(err)
		}
	}
	after := count("after 10 deletes")

	fmt.Println("\n-- recovering node 2 (replay from the write log) --")
	if err := c.RecoverNode(2); err != nil {
		log.Fatal(err)
	}
	if got := count("after recovery"); got != after {
		log.Fatalf("recovered cluster disagrees: %d != %d", got, after)
	}

	// Prove the recovered replica participates and agrees: run the
	// paper's Q6 across all four nodes again.
	res, err := c.Query(tpch.MustQuery(6))
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("\nQ6 revenue=%s  (%d SVP queries, %d sub-queries, %d retried)\n",
		res.Rows[0][0].String(), st.SVPQueries, st.SubQueries, st.SubQueryRetries)
	fmt.Println("node 2 is serving again with no missed writes.")
}
