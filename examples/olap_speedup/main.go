// OLAP speedup demo: the paper's Fig. 2 protocol on a laptop scale —
// isolated TPC-H queries on clusters of 1..8 nodes, five runs each with
// the first dropped, normalized to the 1-node time.
//
//	go run ./examples/olap_speedup
package main

import (
	"fmt"
	"log"

	apuama "apuama"
	"apuama/internal/experiments"
	"apuama/internal/tpch"
	"apuama/internal/workload"
)

func main() {
	nodeCounts := []int{1, 2, 4, 8}
	queries := []int{1, 6, 12} // CPU-bound, IO-bound/selective, join

	cost := experiments.ExperimentCost()
	times := map[int]map[int]float64{} // qn -> nodes -> seconds

	for _, n := range nodeCounts {
		c, err := apuama.Open(apuama.Config{Nodes: n, Cost: cost})
		if err != nil {
			log.Fatal(err)
		}
		if err := c.LoadTPCH(0.005, 1); err != nil {
			log.Fatal(err)
		}
		for _, qn := range queries {
			mean, _, err := workload.IsolatedTiming(c, tpch.MustQuery(qn), 5)
			if err != nil {
				log.Fatalf("n=%d Q%d: %v", n, qn, err)
			}
			if times[qn] == nil {
				times[qn] = map[int]float64{}
			}
			times[qn][n] = mean.Seconds()
			fmt.Printf("n=%d Q%-2d %8.3fs\n", n, qn, mean.Seconds())
		}
	}

	fmt.Printf("\n%8s", "nodes")
	for _, qn := range queries {
		fmt.Printf(" %10s", fmt.Sprintf("Q%d", qn))
	}
	fmt.Println("   (speedup vs 1 node)")
	for _, n := range nodeCounts {
		fmt.Printf("%8d", n)
		for _, qn := range queries {
			fmt.Printf(" %9.1fx", times[qn][nodeCounts[0]]/times[qn][n])
		}
		fmt.Println()
	}
	fmt.Println("\nsuper-linear values (> node count) appear once a node's virtual")
	fmt.Println("partition fits in its buffer pool — the paper's central observation.")
}
