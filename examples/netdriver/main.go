// Network driver demo: serve a cluster over TCP (what cmd/apuamad does)
// and use it from a standard database/sql application through the
// "apuama" driver — the reproduction of the paper's JDBC story, where
// applications need no changes when the single DBMS is replaced by the
// cluster.
//
//	go run ./examples/netdriver
package main

import (
	"database/sql"
	"fmt"
	"log"

	apuama "apuama"
	_ "apuama/internal/driver" // registers the "apuama" database/sql driver
	"apuama/internal/wire"
)

func main() {
	// Server side: a 4-node cluster behind the wire protocol.
	c, err := apuama.Open(apuama.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.LoadTPCH(0.002, 1); err != nil {
		log.Fatal(err)
	}
	srv, err := wire.Serve("127.0.0.1:0", c)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("cluster serving on %s\n", srv.Addr())

	// Client side: plain database/sql, no Apuama-specific code.
	db, err := sql.Open("apuama", srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		log.Fatal(err)
	}

	var orders int64
	if err := db.QueryRow("select count(*) from orders").Scan(&orders); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders: %d\n", orders)

	// This OLAP aggregate runs with intra-query parallelism on the
	// server; the client cannot tell — full distribution transparency.
	rows, err := db.Query(`select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty,
		count(*) as count_order
		from lineitem
		where l_shipdate <= date '1998-12-01' - interval '90' day
		group by l_returnflag, l_linestatus
		order by l_returnflag, l_linestatus`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("\nQ1 (reduced):")
	for rows.Next() {
		var flag, status string
		var qty float64
		var cnt int64
		if err := rows.Scan(&flag, &status, &qty, &cnt); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s %s  qty=%10.0f  orders=%d\n", flag, status, qty, cnt)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// Writes replicate through the same connection.
	if _, err := db.Exec("delete from lineitem where l_orderkey = 9"); err != nil {
		log.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("select count(*) from lineitem where l_orderkey = 9").Scan(&n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrows for order 9 after replicated delete: %d\n", n)
	st := c.Stats()
	fmt.Printf("server-side apuama stats: %d SVP queries, %d sub-queries\n", st.SVPQueries, st.SubQueries)
}
