// Quickstart: open a 4-node Apuama cluster, load TPC-H, and watch the
// same OLAP query run with and without intra-query parallelism.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	apuama "apuama"
	"apuama/internal/experiments"
	"apuama/internal/tpch"
)

func main() {
	const nodes = 4
	// The calibrated simulated-hardware model from the experiment
	// harness: 2005-era disk latencies and a buffer pool that cannot
	// hold the whole fact table on one node.
	cost := experiments.ExperimentCost()

	// The paper's stack: C-JDBC-style controller + Apuama engine.
	withSVP, err := apuama.Open(apuama.Config{Nodes: nodes, Cost: cost})
	if err != nil {
		log.Fatal(err)
	}
	// The baseline: the same cluster with Apuama disabled (inter-query
	// parallelism only — one node runs the whole query).
	baseline, err := apuama.Open(apuama.Config{Nodes: nodes, Cost: cost, DisableSVP: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("loading TPC-H (SF 0.005) into both clusters ...")
	for _, c := range []*apuama.Cluster{withSVP, baseline} {
		if err := c.LoadTPCH(0.005, 1); err != nil {
			log.Fatal(err)
		}
	}

	q6 := tpch.MustQuery(6)
	fmt.Println("\nTPC-H Q6 (forecasting revenue change):")
	fmt.Println(q6)

	run := func(name string, c *apuama.Cluster) time.Duration {
		// Warm-up run, then a measured run — the paper's protocol.
		if _, err := c.Query(q6); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := c.Query(q6)
		if err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		fmt.Printf("\n%s (%d nodes): %v\n%s", name, c.NumNodes(), d.Round(time.Millisecond), res.String())
		return d
	}
	tBase := run("baseline (inter-query only)", baseline)
	tSVP := run("apuama (SVP intra-query)", withSVP)

	fmt.Printf("\nspeedup on %d nodes: %.1fx\n", nodes, float64(tBase)/float64(tSVP))
	st := withSVP.Stats()
	fmt.Printf("apuama stats: %d SVP queries, %d sub-queries dispatched, %d partial rows composed\n",
		st.SVPQueries, st.SubQueries, st.ComposedRows)

	// Updates flow through the same middleware and stay consistent.
	if _, err := withSVP.Exec("delete from lineitem where l_orderkey = 42"); err != nil {
		log.Fatal(err)
	}
	res, err := withSVP.Query("select count(*) from lineitem where l_orderkey = 42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after replicated delete, rows for order 42: %s\n", res.Rows[0][0].String())
}
