package apuama

import (
	"strings"
	"testing"
	"time"

	"apuama/internal/obs"
	"apuama/internal/tpch"
)

// TestMetricsCoverage drives the full stack once and asserts the
// registry exposes the whole observability vocabulary: at least 12
// distinct metric names, spanning the query lifecycle (barrier,
// dispatch, per-subquery, compose) and the resilience layer (hedge,
// retry, breaker), and that the Prometheus exposition carries them.
func TestMetricsCoverage(t *testing.T) {
	c := openTest(t, Config{Nodes: 4})
	defer c.Close()
	for _, qn := range tpch.QueryNumbers {
		if _, err := c.Query(tpch.MustQuery(qn)); err != nil {
			t.Fatalf("Q%d: %v", qn, err)
		}
	}
	if _, err := c.Exec("delete from orders where o_orderkey = 1"); err != nil {
		t.Fatal(err)
	}

	names := c.Metrics().MetricNames()
	if len(names) < 12 {
		t.Errorf("registry has %d metric names, want >= 12: %v", len(names), names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{
		obs.MQueryDuration, obs.MBarrierWait, obs.MDispatch, obs.MGather,
		obs.MCompose, obs.MSubqueryDuration, obs.MSVPQueries, obs.MSubqueries,
		obs.MHedges, obs.MSubqueryRetries, obs.MBreakerTrips, obs.MPoolWait,
		obs.MNodeInflight, obs.MComposedRows,
	} {
		if !have[want] {
			t.Errorf("metric %q not registered; have %v", want, names)
		}
	}

	// Lifecycle histograms actually observed the workload.
	for _, h := range []string{obs.MQueryDuration, obs.MBarrierWait, obs.MDispatch, obs.MGather, obs.MCompose} {
		if s := c.Metrics().HistogramSnapshot(h); s.Count < int64(len(tpch.QueryNumbers)) {
			t.Errorf("%s count = %d, want >= %d", h, s.Count, len(tpch.QueryNumbers))
		}
	}
	if got := c.Metrics().CounterValue(obs.MSVPQueries); got != int64(len(tpch.QueryNumbers)) {
		t.Errorf("%s = %d, want %d", obs.MSVPQueries, got, len(tpch.QueryNumbers))
	}

	var b strings.Builder
	if err := c.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{obs.MSVPQueries, obs.MBarrierWait, obs.MCompose} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTracingThroughFacade asserts the opt-in span tracer records a
// full lifecycle tree per query and that the lifecycle phases tile the
// root span (their durations sum to within 10% of the total — the
// apuama-bench --trace contract).
func TestTracingThroughFacade(t *testing.T) {
	// Hedging off: a straggler hedge under load adds a fifth subquery
	// span, and this test pins the exact span count per query.
	c := openTest(t, Config{Nodes: 4, Trace: true, DisableHedging: true})
	defer c.Close()
	for _, qn := range tpch.QueryNumbers {
		if _, err := c.Query(tpch.MustQuery(qn)); err != nil {
			t.Fatalf("Q%d: %v", qn, err)
		}
	}
	log := c.SlowLog()
	if len(log) != len(tpch.QueryNumbers) {
		t.Fatalf("slow log has %d traces, want %d", len(log), len(tpch.QueryNumbers))
	}
	for _, tr := range log {
		if tr.Name != "query" || tr.Attr("sql") == "" {
			t.Fatalf("malformed root span: %+v", tr)
		}
		var explained time.Duration
		for _, ph := range []string{"plan", "barrier-wait", "dispatch", "gather", "compose"} {
			child, ok := tr.ChildNamed(ph)
			if !ok {
				t.Fatalf("trace %q missing phase %q", tr.Attr("sql")[:40], ph)
			}
			explained += child.Duration
		}
		subq := 0
		for _, child := range tr.Children {
			if child.Name == "subquery" {
				subq++
				if child.Attr("node") == "" || child.Attr("partition") == "" {
					t.Errorf("subquery span missing node/partition annotations: %+v", child.Attrs)
				}
			}
		}
		if subq != 4 {
			t.Errorf("trace %q has %d subquery spans, want 4", tr.Attr("sql")[:40], subq)
		}
		if explained < tr.Duration*9/10 {
			t.Errorf("trace %q: phases explain %v of %v (< 90%%)",
				tr.Attr("sql")[:40], explained, tr.Duration)
		}
	}
}

// TestTracingOffByDefault: without Config.Trace the slow log stays nil
// and queries run untraced.
func TestTracingOffByDefault(t *testing.T) {
	c := openTest(t, Config{Nodes: 2})
	defer c.Close()
	if _, err := c.Query(tpch.MustQuery(6)); err != nil {
		t.Fatal(err)
	}
	if log := c.SlowLog(); log != nil {
		t.Errorf("untraced cluster has a slow log: %d entries", len(log))
	}
}

// TestFaultMetricsMirror: injected faults surface on the registry,
// labeled by node and kind, alongside the resilience counters they
// drive.
func TestFaultMetricsMirror(t *testing.T) {
	c := openTest(t, Config{Nodes: 3})
	defer c.Close()
	inj := NewFaultInjector(1).FlakyEvery(2)
	if err := c.InjectFaults(1, inj); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Query(tpch.MustQuery(6)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	transient := c.Metrics().CounterValue(obs.Labeled(obs.MFaultsDown, "node", "1", "kind", "transient"))
	if transient == 0 {
		t.Error("no injected-transient metric recorded")
	}
	if got := inj.Snapshot().TransientErrs; got != transient {
		t.Errorf("metric %d != injector stats %d", transient, got)
	}
	if c.Metrics().CounterValue(obs.MSubqueryRetries) == 0 &&
		c.Metrics().CounterValue(obs.MBackoffRetries) == 0 {
		t.Error("injected transients should drive a retry counter")
	}
}
