// Command apuama-sql is an interactive SQL shell.
//
// It either dials a running apuamad (-addr) or spins up an in-process
// cluster (-local, with -nodes/-sf) and reads statements from stdin, one
// per line (a trailing backslash continues a statement on the next
// line). SELECTs print aligned tables; other statements print the
// affected-row count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	apuama "apuama"
	"apuama/internal/engine"
	"apuama/internal/wire"
)

// session abstracts local vs remote execution.
type session interface {
	Query(sqlText string) (*engine.Result, error)
	Exec(sqlText string) (int64, error)
}

func main() {
	var (
		addr  = flag.String("addr", "", "apuamad address (empty with -local)")
		local = flag.Bool("local", false, "run an in-process cluster instead of dialing")
		nodes    = flag.Int("nodes", 4, "nodes for -local")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor for -local")
		columnar = flag.Bool("columnar", false, "enable the columnar segment store for -local")
	)
	flag.Parse()

	var sess session
	switch {
	case *local:
		cfg := apuama.Config{Nodes: *nodes, Columnar: *columnar}
		c, err := apuama.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *sf > 0 {
			fmt.Fprintf(os.Stderr, "loading TPC-H at SF %g ...\n", *sf)
			if err := c.LoadTPCH(*sf, 1); err != nil {
				log.Fatal(err)
			}
		}
		sess = c
	case *addr != "":
		c, err := wire.Dial(*addr)
		if err != nil {
			log.Fatalf("apuama-sql: %v", err)
		}
		defer c.Close()
		sess = c
	default:
		log.Fatal("apuama-sql: pass -addr host:port or -local")
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("apuama> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			prompt()
			continue
		}
		pending.WriteString(line)
		stmtText := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmtText == "" {
			prompt()
			continue
		}
		if stmtText == "quit" || stmtText == "exit" || stmtText == `\q` {
			return
		}
		runStatement(sess, stmtText)
		prompt()
	}
}

func runStatement(sess session, stmtText string) {
	start := time.Now()
	lower := strings.ToLower(strings.TrimSpace(stmtText))
	if strings.HasPrefix(lower, "select") || strings.HasPrefix(lower, "explain") {
		res, err := sess.Query(stmtText)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Print(res.String())
		fmt.Printf("(%d rows, %v)\n", len(res.Rows), time.Since(start).Round(time.Millisecond))
		return
	}
	n, err := sess.Exec(stmtText)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	fmt.Printf("ok (%d rows affected, %v)\n", n, time.Since(start).Round(time.Millisecond))
}
