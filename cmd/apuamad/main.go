// Command apuamad runs a database cluster and serves it over TCP.
//
// It assembles the full paper stack — n replicated node engines, the
// C-JDBC-equivalent controller, and the Apuama Engine — optionally
// pre-loaded with TPC-H data, and listens with the wire protocols that
// internal/driver's database/sql driver speaks: by default the binary
// columnar protocol with per-connection fallback to the legacy gob
// codec (-proto pins one or the other).
//
// Usage:
//
//	apuamad -nodes 8 -sf 0.01 -addr 127.0.0.1:7654
//	apuamad -nodes 8 -sf 0.01 -baseline   # inter-query parallelism only
//	apuamad -nodes 8 -proto gob           # legacy gob-only listener
//
// With -metrics-addr it additionally serves observability over HTTP:
//
//	GET /metrics         Prometheus text exposition of the cluster registry
//	GET /debug/slowlog   JSON span trees of recent slow queries (needs -trace)
//	GET /debug/cache     JSON counters of the result cache (needs -cache-entries)
//	GET /debug/admission JSON counters of the overload-protection subsystem
//	                     (needs -max-concurrent / -memory-budget / -brownout)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	apuama "apuama"
	"apuama/internal/proto"
	"apuama/internal/wire"
)

// serveObs starts the observability HTTP listener: /metrics in
// Prometheus text format and /debug/slowlog as a JSON array of span
// trees (empty unless the daemon runs with -trace).
func serveObs(addr string, c *apuama.Cluster) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := c.WriteMetrics(w); err != nil {
			log.Printf("apuamad: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := c.SlowLog()
		if traces == nil {
			traces = []apuama.QueryTrace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traces); err != nil {
			log.Printf("apuamad: /debug/slowlog: %v", err)
		}
	})
	mux.HandleFunc("/debug/cache", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.CacheStats()); err != nil {
			log.Printf("apuamad: /debug/cache: %v", err)
		}
	})
	mux.HandleFunc("/debug/admission", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.AdmissionStats()); err != nil {
			log.Printf("apuamad: /debug/admission: %v", err)
		}
	})
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("apuamad: metrics server: %v", err)
		}
	}()
	return srv, nil
}

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "number of replica nodes")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor to preload (0 = empty cluster)")
		seed     = flag.Int64("seed", 1, "TPC-H generator seed")
		addr     = flag.String("addr", "127.0.0.1:7654", "listen address")
		baseline = flag.Bool("baseline", false, "disable Apuama (plain C-JDBC-style cluster)")
		avp      = flag.Bool("avp", false, "use Adaptive Virtual Partitioning instead of SVP")
		stale    = flag.Int64("staleness", 0, "relaxed-freshness bound in writes (0 = strict barrier)")
		sleep    = flag.Bool("realtime", false, "sleep simulated latencies (realistic timing)")
		par      = flag.Int("parallelism", 0, "intra-node morsel-driven degree per node engine (0 = auto, 1 = serial)")
		avpGran  = flag.Int("avp-granularity", 0, "fine virtual partitions per configured node (0 = auto, 1 = coarse one-range-per-node)")
		columnar = flag.Bool("columnar", false, "enable the columnar segment store with zone-map pruning")
		mqo      = flag.Bool("mqo", false, "enable multi-query optimization: cooperative shared scans and common sub-plan sharing")
		mqoWin   = flag.Duration("mqo-window", 0, "admission batching window for MQO bursts (0 = 3ms default when -mqo)")

		maxConc   = flag.Int("max-concurrent", 0, "admission gate capacity in weighted query slots (0 = gate off)")
		maxQueue  = flag.Int("max-queue", 0, "admission wait-queue bound (default 4 x -max-concurrent)")
		memBudget = flag.Int64("memory-budget", 0, "cluster-wide composition-memory budget in bytes (0 = unlimited)")
		brownout  = flag.Bool("brownout", false, "enable the graceful-degradation ladder under sustained overload")
		slowKill  = flag.Float64("slow-kill", 0, "cancel queries running past this multiple of their class budget (0 = off)")

		cacheEntries = flag.Int("cache-entries", 0, "result-cache capacity in composed results (0 = caching off)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (with -cache-entries)")
		cacheTTL     = flag.Duration("cache-ttl", 0, "result-cache entry TTL (0 = no expiry)")
		cacheStale   = flag.Int64("cache-stale", 0, "serve cached results up to this many committed writes behind the head")

		protoFlag = flag.String("proto", "auto", "wire protocol to serve: auto (binary with gob fallback per connection), binary, or gob only")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/slowlog and /debug/cache on this address (e.g. 127.0.0.1:7655; empty = off)")
		trace       = flag.Bool("trace", false, "record per-query lifecycle span trees into the slow-query log")
		slowLogSize = flag.Int("slowlog-size", 128, "slow-query log ring size")
		slowerThan  = flag.Duration("slower-than", 0, "only log queries at least this slow (0 = all traced queries)")
	)
	flag.Parse()

	cfg := apuama.Config{
		Nodes: *nodes, DisableSVP: *baseline, UseAVP: *avp, MaxStaleness: *stale,
		Parallelism: *par, AVPGranularity: *avpGran, Columnar: *columnar,
		MQO: *mqo, MQOWindow: *mqoWin,
		MaxConcurrent: *maxConc, MaxQueue: *maxQueue, MemoryBudget: *memBudget,
		Brownout: *brownout, SlowKillMultiple: *slowKill,
		Trace: *trace, SlowLogSize: *slowLogSize, SlowQueryThreshold: *slowerThan,
	}
	if *cacheEntries > 0 {
		cfg.Cache = apuama.CacheConfig{
			Entries:        *cacheEntries,
			MaxBytes:       *cacheBytes,
			TTL:            *cacheTTL,
			MaxStaleEpochs: *cacheStale,
		}
	}
	cfg.Cost = apuama.DefaultCost()
	cfg.Cost.RealSleep = *sleep
	c, err := apuama.Open(cfg)
	if err != nil {
		log.Fatalf("apuamad: %v", err)
	}
	if *sf > 0 {
		log.Printf("loading TPC-H at SF %g ...", *sf)
		if err := c.LoadTPCH(*sf, *seed); err != nil {
			log.Fatalf("apuamad: load: %v", err)
		}
		for table, pages := range c.SizeReport() {
			log.Printf("  %-10s %6d pages", table, pages)
		}
	}
	var srv interface {
		Addr() string
		Close() error
	}
	switch mode, err := proto.ParseMode(*protoFlag); {
	case err != nil:
		log.Fatalf("apuamad: %v", err)
	case mode == proto.ModeGob:
		s, err := wire.Serve(*addr, c)
		if err != nil {
			log.Fatalf("apuamad: %v", err)
		}
		srv = s
	default:
		s, err := proto.Serve(*addr, c, proto.Options{
			Metrics:    c.Metrics(),
			BinaryOnly: mode == proto.ModeBinary,
		})
		if err != nil {
			log.Fatalf("apuamad: %v", err)
		}
		c.AttachWireServer(s)
		srv = s
	}
	var obsSrv *http.Server
	if *metricsAddr != "" {
		obsSrv, err = serveObs(*metricsAddr, c)
		if err != nil {
			log.Fatalf("apuamad: metrics listener: %v", err)
		}
		fmt.Printf("apuamad: observability on http://%s/metrics and /debug/slowlog\n", *metricsAddr)
	}
	mode := "apuama (inter- + intra-query parallelism)"
	if *baseline {
		mode = "baseline (inter-query parallelism only)"
	}
	fmt.Printf("apuamad: %d nodes, %s, listening on %s\n", *nodes, mode, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\napuamad: shutting down")
	if obsSrv != nil {
		obsSrv.Close()
	}
	if err := srv.Close(); err != nil {
		log.Printf("apuamad: close: %v", err)
	}
}
