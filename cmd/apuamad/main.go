// Command apuamad runs a database cluster and serves it over TCP.
//
// It assembles the full paper stack — n replicated node engines, the
// C-JDBC-equivalent controller, and the Apuama Engine — optionally
// pre-loaded with TPC-H data, and listens with the gob wire protocol
// that internal/driver's database/sql driver speaks.
//
// Usage:
//
//	apuamad -nodes 8 -sf 0.01 -addr 127.0.0.1:7654
//	apuamad -nodes 8 -sf 0.01 -baseline   # inter-query parallelism only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	apuama "apuama"
	"apuama/internal/wire"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "number of replica nodes")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor to preload (0 = empty cluster)")
		seed     = flag.Int64("seed", 1, "TPC-H generator seed")
		addr     = flag.String("addr", "127.0.0.1:7654", "listen address")
		baseline = flag.Bool("baseline", false, "disable Apuama (plain C-JDBC-style cluster)")
		avp      = flag.Bool("avp", false, "use Adaptive Virtual Partitioning instead of SVP")
		stale    = flag.Int64("staleness", 0, "relaxed-freshness bound in writes (0 = strict barrier)")
		sleep    = flag.Bool("realtime", false, "sleep simulated latencies (realistic timing)")
	)
	flag.Parse()

	cfg := apuama.Config{Nodes: *nodes, DisableSVP: *baseline, UseAVP: *avp, MaxStaleness: *stale}
	cfg.Cost = apuama.DefaultCost()
	cfg.Cost.RealSleep = *sleep
	c, err := apuama.Open(cfg)
	if err != nil {
		log.Fatalf("apuamad: %v", err)
	}
	if *sf > 0 {
		log.Printf("loading TPC-H at SF %g ...", *sf)
		if err := c.LoadTPCH(*sf, *seed); err != nil {
			log.Fatalf("apuamad: load: %v", err)
		}
		for table, pages := range c.SizeReport() {
			log.Printf("  %-10s %6d pages", table, pages)
		}
	}
	srv, err := wire.Serve(*addr, c)
	if err != nil {
		log.Fatalf("apuamad: %v", err)
	}
	mode := "apuama (inter- + intra-query parallelism)"
	if *baseline {
		mode = "baseline (inter-query parallelism only)"
	}
	fmt.Printf("apuamad: %d nodes, %s, listening on %s\n", *nodes, mode, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\napuamad: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("apuamad: close: %v", err)
	}
}
