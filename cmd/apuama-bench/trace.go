package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	apuama "apuama"
	"apuama/internal/experiments"
	"apuama/internal/tpch"
)

// tracePhases are the query-lifecycle spans that tile the root query
// span end to end; "other" (facade/controller overhead between phases)
// is derived as the remainder.
var tracePhases = []string{"plan", "barrier-wait", "dispatch", "gather", "compose"}

// runTrace runs every SVP-eligible TPC-H query once on a traced
// cluster and prints the per-phase latency breakdown of each query's
// span tree. The phase columns plus "other" sum to the total by
// construction; "cover%" reports how much of the total the named
// lifecycle phases explain (the sanity signal that the span tree
// actually tiles the query).
func runTrace(cfg experiments.Config) error {
	n := 4
	if len(cfg.Nodes) > 0 {
		n = cfg.Nodes[len(cfg.Nodes)-1]
	}
	c, err := apuama.Open(apuama.Config{Nodes: n, Trace: true, SlowLogSize: 256})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.LoadTPCH(cfg.SF, 1); err != nil {
		return err
	}
	fmt.Printf("apuama-bench: tracing %d TPC-H queries on %d nodes at SF %g\n\n",
		len(tpch.QueryNumbers), n, cfg.SF)
	for _, qn := range tpch.QueryNumbers {
		if _, err := c.Query(tpch.MustQuery(qn)); err != nil {
			return fmt.Errorf("Q%d: %w", qn, err)
		}
	}

	traces := c.SlowLog() // most recent first
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "query\ttotal\t")
	for _, ph := range tracePhases {
		fmt.Fprintf(tw, "%s\t", ph)
	}
	fmt.Fprint(tw, "other\tsubqueries\tcover%\t\n")
	for i := len(traces) - 1; i >= 0; i-- {
		tr := traces[i]
		qn := tpch.QueryNumbers[len(traces)-1-i]
		total := tr.Duration
		var explained time.Duration
		fmt.Fprintf(tw, "Q%d\t%s\t", qn, fmtDur(total))
		for _, ph := range tracePhases {
			var d time.Duration
			if child, ok := tr.ChildNamed(ph); ok {
				d = child.Duration
			}
			explained += d
			fmt.Fprintf(tw, "%s\t", fmtDur(d))
		}
		subq := 0
		for _, child := range tr.Children {
			if child.Name == "subquery" {
				subq++
			}
		}
		other := total - explained
		if other < 0 {
			other = 0
		}
		cover := 0.0
		if total > 0 {
			cover = 100 * float64(explained) / float64(total)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t\n", fmtDur(other), subq, cover)
	}
	return tw.Flush()
}

// fmtDur renders a duration at microsecond resolution (the scale the
// simulated cost model operates at).
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
