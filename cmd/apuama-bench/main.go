// Command apuama-bench regenerates the paper's evaluation figures and
// the ablation studies. Each experiment prints a progress stream and a
// final paper-style table (raw values plus the normalized view the paper
// plots).
//
// Usage:
//
//	apuama-bench -exp all                 # the five paper figures
//	apuama-bench -exp fig2 -nodes 1,2,4,8
//	apuama-bench -exp ablations -quick
//	apuama-bench -exp fig4a -baseline     # inter-query-only comparison
//	apuama-bench -exp fig2 -json out.json # machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"apuama/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "fig2|fig3a|fig3b|fig4a|fig4b|all|ablations|freshness|strategy|skew|cache|overload|steal|columnar|wire|mqo")
		sf       = flag.Float64("sf", 0, "TPC-H scale factor (0 = default)")
		nodesArg = flag.String("nodes", "", "comma-separated node counts (default 1,2,4,8,16,32)")
		repeats  = flag.Int("repeats", 0, "runs per isolated query (default 5)")
		updates  = flag.Int("updates", 0, "refresh orders for mixed workloads")
		streams  = flag.Int("streams", 0, "read streams for throughput workloads")
		quick    = flag.Bool("quick", false, "small smoke configuration")
		baseline = flag.Bool("baseline", false, "disable Apuama (C-JDBC baseline)")
		par      = flag.Int("parallelism", 1, "intra-node morsel-driven degree per node engine (0 = auto, 1 = serial)")
		avpGran  = flag.Int("avp-granularity", 0, "fine virtual partitions per configured node (0 = auto, 1 = coarse)")
		columnar = flag.Bool("columnar", false, "enable the columnar segment store with zone-map pruning")
		mqo      = flag.Bool("mqo", false, "enable multi-query optimization (shared scans + sub-plan sharing)")
		mqoWin   = flag.Duration("mqo-window", 0, "admission batching window for MQO bursts (0 = 3ms default when -mqo)")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
		trace    = flag.Bool("trace", false, "trace each TPC-H query once and print the per-phase latency breakdown")
		jsonOut  = flag.String("json", "", "also write the figures as JSON to this file (for plotting/CI diffing)")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *sf > 0 {
		cfg.SF = *sf
	}
	if *nodesArg != "" {
		var nodes []int
		for _, part := range strings.Split(*nodesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				log.Fatalf("apuama-bench: bad -nodes %q", *nodesArg)
			}
			nodes = append(nodes, n)
		}
		cfg.Nodes = nodes
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if *updates > 0 {
		cfg.UpdateOrders = *updates
	}
	if *streams > 0 {
		cfg.ReadStreams = *streams
	}
	cfg.Baseline = *baseline
	cfg.Parallelism = *par
	cfg.AVPGranularity = *avpGran
	cfg.Columnar = *columnar
	cfg.MQO = *mqo
	cfg.MQOWindow = *mqoWin

	if *trace {
		if err := runTrace(cfg); err != nil {
			log.Fatalf("apuama-bench: trace: %v", err)
		}
		return
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}

	fmt.Printf("apuama-bench: exp=%s sf=%g nodes=%v repeats=%d streams=%d updates=%d baseline=%v parallelism=%d\n",
		*exp, cfg.SF, cfg.Nodes, cfg.Repeats, cfg.ReadStreams, cfg.UpdateOrders, cfg.Baseline, cfg.Parallelism)
	start := time.Now()

	var figs []*experiments.Figure
	var err error
	switch *exp {
	case "fig2":
		figs, err = one(experiments.Fig2, cfg, progress)
	case "fig3a":
		figs, err = one(experiments.Fig3a, cfg, progress)
	case "fig3b":
		figs, err = one(experiments.Fig3b, cfg, progress)
	case "fig4a":
		figs, err = one(experiments.Fig4a, cfg, progress)
	case "fig4b":
		figs, err = one(experiments.Fig4b, cfg, progress)
	case "all":
		figs, err = experiments.All(cfg, progress)
	case "ablations":
		figs, err = experiments.Ablations(cfg, progress)
	case "freshness":
		figs, err = one(experiments.FreshnessExperiment, cfg, progress)
	case "strategy":
		figs, err = one(experiments.AblationStrategy, cfg, progress)
	case "skew":
		figs, err = one(experiments.AblationSkew, cfg, progress)
	case "cache":
		figs, err = one(experiments.CacheExperiment, cfg, progress)
	case "overload":
		figs, err = one(experiments.OverloadExperiment, cfg, progress)
	case "steal":
		figs, err = one(experiments.StealExperiment, cfg, progress)
	case "columnar":
		figs, err = one(experiments.ColumnarExperiment, cfg, progress)
	case "wire":
		figs, err = one(experiments.WireExperiment, cfg, progress)
	case "mqo":
		figs, err = one(experiments.MQOExperiment, cfg, progress)
	default:
		log.Fatalf("apuama-bench: unknown experiment %q", *exp)
	}
	if err != nil {
		log.Fatalf("apuama-bench: %v", err)
	}
	for _, fig := range figs {
		fmt.Println()
		fig.Fprint(os.Stdout)
		if fig.ID == "fig2" || strings.HasPrefix(fig.ID, "fig3") || strings.HasPrefix(fig.ID, "fig4") {
			fmt.Println()
			fig.Normalized().Fprint(os.Stdout)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, *exp, cfg, figs); err != nil {
			log.Fatalf("apuama-bench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
	fmt.Printf("\ntotal time: %v\n", time.Since(start).Round(time.Second))
}

// benchReport is the -json output document: the run's configuration
// alongside the raw figures, stable enough to diff across runs.
type benchReport struct {
	Experiment  string                `json:"experiment"`
	SF          float64               `json:"sf"`
	Nodes       []int                 `json:"nodes"`
	Repeats     int                   `json:"repeats"`
	Streams     int                   `json:"streams"`
	Updates     int                   `json:"updates"`
	Baseline    bool                  `json:"baseline"`
	Parallelism int                   `json:"parallelism"`
	AVPGran     int                   `json:"avp_granularity"`
	Columnar    bool                  `json:"columnar"`
	MQO         bool                  `json:"mqo"`
	Figures     []*experiments.Figure `json:"figures"`
}

func writeJSON(path, exp string, cfg experiments.Config, figs []*experiments.Figure) error {
	doc := benchReport{
		Experiment:  exp,
		SF:          cfg.SF,
		Nodes:       cfg.Nodes,
		Repeats:     cfg.Repeats,
		Streams:     cfg.ReadStreams,
		Updates:     cfg.UpdateOrders,
		Baseline:    cfg.Baseline,
		Parallelism: cfg.Parallelism,
		AVPGran:     cfg.AVPGranularity,
		Columnar:    cfg.Columnar,
		MQO:         cfg.MQO,
		Figures:     figs,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func one(run func(experiments.Config, io.Writer) (*experiments.Figure, error), cfg experiments.Config, w io.Writer) ([]*experiments.Figure, error) {
	fig, err := run(cfg, w)
	if err != nil {
		return nil, err
	}
	return []*experiments.Figure{fig}, nil
}
