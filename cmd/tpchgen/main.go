// Command tpchgen generates the TPC-H population at a scale factor and
// writes one CSV file per table — useful for inspecting the synthetic
// data or feeding it to other systems.
//
// Usage:
//
//	tpchgen -sf 0.01 -o /tmp/tpch
//	tpchgen -sf 0.01 -table lineitem -o /tmp/tpch
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"apuama/internal/costmodel"
	"apuama/internal/engine"
	"apuama/internal/tpch"
)

func main() {
	var (
		sf    = flag.Float64("sf", 0.01, "scale factor")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", ".", "output directory")
		table = flag.String("table", "", "single table to dump (default: all)")
	)
	flag.Parse()

	db := engine.NewDatabase(costmodel.Default())
	if _, err := (tpch.Generator{SF: *sf, Seed: *seed}).Load(db); err != nil {
		log.Fatalf("tpchgen: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("tpchgen: %v", err)
	}
	tables := db.Relations()
	if *table != "" {
		tables = []string{*table}
	}
	for _, name := range tables {
		n, err := dump(db, name, *out)
		if err != nil {
			log.Fatalf("tpchgen: %s: %v", name, err)
		}
		fmt.Printf("%-10s %8d rows -> %s.csv\n", name, n, filepath.Join(*out, name))
	}
}

func dump(db *engine.Database, name, dir string) (int, error) {
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return tpch.ExportCSV(db, name, f)
}
