package apuama

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"apuama/internal/tpch"
)

func openTest(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Cost.PageSize == 0 {
		cfg.Cost = DefaultCost()
		cfg.Cost.RealSleep = false
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadTPCH(0.001, 1); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Nodes: 0}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := Open(Config{Nodes: -3}); err == nil {
		t.Error("negative nodes should fail")
	}
}

func TestFacadeQueryAndExec(t *testing.T) {
	c := openTest(t, Config{Nodes: 3})
	res, err := c.Query(tpch.MustQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Cols[0] != "revenue" {
		t.Fatalf("%+v", res)
	}
	if c.NumNodes() != 3 {
		t.Error("NumNodes")
	}
	n, err := c.Exec("delete from lineitem where l_orderkey = 5")
	if err != nil || n < 1 {
		t.Fatalf("exec: %d %v", n, err)
	}
	st := c.Stats()
	if st.SVPQueries != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestFacadeBaselineMode(t *testing.T) {
	c := openTest(t, Config{Nodes: 2, DisableSVP: true})
	if _, err := c.Query(tpch.MustQuery(6)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SVPQueries != 0 || st.PassThrough != 1 {
		t.Errorf("baseline stats: %+v", st)
	}
}

func TestFacadeMetersAndSizes(t *testing.T) {
	c := openTest(t, Config{Nodes: 2})
	if _, err := c.Query("select count(*) from lineitem"); err != nil {
		t.Fatal(err)
	}
	_, misses := c.NodeIOStats()
	total := int64(0)
	for _, m := range misses {
		total += m
	}
	if total == 0 {
		t.Error("no IO recorded")
	}
	c.ResetMeters()
	_, misses = c.NodeIOStats()
	for _, m := range misses {
		if m != 0 {
			t.Error("ResetMeters did not clear IO stats")
		}
	}
	sizes := c.SizeReport()
	if sizes["lineitem"] == 0 {
		t.Errorf("sizes: %v", sizes)
	}
	db, nodes, eng, ctl := c.Internals()
	if db == nil || len(nodes) != 2 || eng == nil || ctl == nil {
		t.Error("Internals")
	}
}

func TestFacadeAblationOptions(t *testing.T) {
	for _, cfg := range []Config{
		{Nodes: 2, StreamCompose: true},
		{Nodes: 2, NoBarrier: true},
		{Nodes: 2, AllowSeqscan: true},
		{Nodes: 2, PoolSize: 2},
	} {
		c := openTest(t, cfg)
		res, err := c.Query(tpch.MustQuery(1))
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%+v: empty Q1", cfg)
		}
	}
}

func TestClusterVacuum(t *testing.T) {
	c := openTest(t, Config{Nodes: 2})
	before := c.SizeReport()["lineitem"]
	if _, err := c.Exec("delete from lineitem where l_orderkey <= 500"); err != nil {
		t.Fatal(err)
	}
	removed := c.Vacuum()
	if removed == 0 {
		t.Fatal("vacuum reclaimed nothing")
	}
	after := c.SizeReport()["lineitem"]
	if after >= before {
		t.Errorf("pages did not shrink: %d -> %d", before, after)
	}
	// Queries still correct post-vacuum.
	res, err := c.Query("select count(*) from lineitem where l_orderkey <= 500")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("deleted rows visible after vacuum: %v", res.Rows[0])
	}
	res, err = c.Query("select count(*) from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I == 0 {
		t.Error("vacuum destroyed live rows")
	}
}

func TestFreshnessThroughFacade(t *testing.T) {
	c := openTest(t, Config{Nodes: 3, MaxStaleness: 8})
	if _, err := c.Exec("delete from orders where o_orderkey = 1"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("select count(*) from orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I == 0 {
		t.Error("empty result")
	}
}

func TestAVPThroughFacade(t *testing.T) {
	c := openTest(t, Config{Nodes: 3, UseAVP: true})
	res, err := c.Query(tpch.MustQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%+v", res)
	}
	if st := c.Stats(); st.SubQueries <= 3 {
		t.Errorf("AVP should chunk: %+v", st.SubQueries)
	}
}

func TestKillRecoverCycle(t *testing.T) {
	c := openTest(t, Config{Nodes: 3})
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	// Writes proceed on survivors while node 1 is dead.
	for i := 0; i < 5; i++ {
		if _, err := c.Exec(fmt.Sprintf("delete from orders where o_orderkey = %d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// A read to flush failover state (the dead node gets disabled).
	if _, err := c.Query("select count(*) from nation"); err != nil {
		t.Fatal(err)
	}
	// Recover: replay missed writes, rejoin.
	if err := c.RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	db, nodes, _, _ := c.Internals()
	_ = db
	if nodes[1].Watermark() != nodes[0].Watermark() {
		t.Fatalf("recovered node not caught up: %d vs %d", nodes[1].Watermark(), nodes[0].Watermark())
	}
	// The recovered replica participates in SVP again and answers match.
	res, err := c.Query("select count(*) from orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1500-5 {
		t.Fatalf("post-recovery count: %v", res.Rows[0])
	}
	st := c.Stats()
	if st.SVPQueries == 0 {
		t.Error("SVP did not run post-recovery")
	}
	if err := c.KillNode(99); err == nil {
		t.Error("bad node index should fail")
	}
	if err := c.RecoverNode(-1); err == nil {
		t.Error("bad node index should fail")
	}
}

func TestRecoverWithFurtherWrites(t *testing.T) {
	c := openTest(t, Config{Nodes: 2})
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("delete from lineitem where l_orderkey = 2"); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	// Writes after recovery reach both replicas again.
	if _, err := c.Exec("delete from lineitem where l_orderkey = 3"); err != nil {
		t.Fatal(err)
	}
	_, nodes, _, _ := c.Internals()
	if nodes[0].Watermark() != nodes[1].Watermark() {
		t.Fatalf("watermarks diverged after recovery: %d vs %d", nodes[0].Watermark(), nodes[1].Watermark())
	}
}

func TestExplainThroughCluster(t *testing.T) {
	c := openTest(t, Config{Nodes: 2})
	res, err := c.Query("explain select sum(l_quantity) from lineitem where l_orderkey between 1 and 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0] != "QUERY PLAN" || len(res.Rows) == 0 {
		t.Fatalf("%+v", res)
	}
	found := false
	for _, row := range res.Rows {
		if strings.Contains(row[0].S, "Index Scan") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected index scan in plan: %v", res.Rows)
	}
}

func TestReplicatedUpdateStatement(t *testing.T) {
	c := openTest(t, Config{Nodes: 3})
	if n, err := c.Exec("update orders set o_orderpriority = '1-URGENT' where o_orderkey <= 20"); err != nil || n != 20 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	// Every replica sees exactly one version per key with the new value.
	_, nodes, _, _ := c.Internals()
	for _, nd := range nodes {
		res, err := nd.Query("select count(*) from orders where o_orderkey <= 20 and o_orderpriority = '1-URGENT'")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != 20 {
			t.Fatalf("node %d: %v", nd.ID(), res.Rows[0])
		}
		res, err = nd.Query("select count(*) from orders where o_orderkey <= 20")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != 20 {
			t.Fatalf("node %d duplicated versions: %v", nd.ID(), res.Rows[0])
		}
	}
	// And SVP aggregates reflect it.
	res, err := c.Query("select count(*) from orders where o_orderpriority = '1-URGENT' and o_orderkey <= 20")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 20 {
		t.Fatalf("cluster view: %v", res.Rows[0])
	}
}

func TestConcurrentUpdatesRacingReplicas(t *testing.T) {
	// UPDATE statements race across replicas applying kill+reinsert; the
	// shared heap must end with exactly one live version per key.
	c := openTest(t, Config{Nodes: 4})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				lo := g*50 + i*10 + 1
				stmt := fmt.Sprintf("update orders set o_shippriority = %d where o_orderkey between %d and %d", g+1, lo, lo+9)
				if _, err := c.Exec(stmt); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := c.Query("select count(*) from orders where o_orderkey <= 200")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 200 {
		t.Fatalf("version count wrong after racing updates: %v", res.Rows[0])
	}
	res, err = c.Query("select count(*) from orders where o_orderkey <= 200 and o_shippriority > 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 200 {
		t.Fatalf("updates lost: %v", res.Rows[0])
	}
}
